#include "obs/trace_check.hh"

#include <algorithm>
#include <cctype>
#include <istream>
#include <iterator>
#include <memory>

#include "sim/logging.hh"

namespace vip
{

namespace
{

/**
 * Minimal recursive-descent JSON parser — just enough DOM for
 * trace_event files, with no external dependencies.
 */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _s(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (_pos != _s.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        fatal("JSON parse error at offset ", _pos, ": ", why);
    }

    void
    skipWs()
    {
        while (_pos < _s.size()
               && std::isspace(static_cast<unsigned char>(_s[_pos])))
            ++_pos;
    }

    char
    peek()
    {
        skipWs();
        if (_pos >= _s.size())
            fail("unexpected end of input");
        return _s[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + _s[_pos]
                 + "'");
        ++_pos;
    }

    JsonValue
    value()
    {
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return stringValue();
          case 't': return literal("true", JsonValue::Kind::Bool, true);
          case 'f':
            return literal("false", JsonValue::Kind::Bool, false);
          case 'n': return literal("null", JsonValue::Kind::Null, false);
          default: return number();
        }
    }

    JsonValue
    literal(const char *word, JsonValue::Kind kind, bool b)
    {
        for (const char *p = word; *p; ++p, ++_pos)
            if (_pos >= _s.size() || _s[_pos] != *p)
                fail(std::string("bad literal, expected ") + word);
        JsonValue v;
        v.kind = kind;
        v.b = b;
        return v;
    }

    JsonValue
    number()
    {
        std::size_t start = _pos;
        while (_pos < _s.size()
               && (std::isdigit(static_cast<unsigned char>(_s[_pos]))
                   || _s[_pos] == '-' || _s[_pos] == '+'
                   || _s[_pos] == '.' || _s[_pos] == 'e'
                   || _s[_pos] == 'E'))
            ++_pos;
        if (_pos == start)
            fail("expected a number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        try {
            v.num = std::stod(_s.substr(start, _pos - start));
        } catch (const std::exception &) {
            fail("unparseable number '" + _s.substr(start, _pos - start)
                 + "'");
        }
        return v;
    }

    JsonValue
    stringValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.str = rawString();
        return v;
    }

    std::string
    rawString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _s.size())
                fail("unterminated string");
            char c = _s[_pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _s.size())
                fail("dangling escape");
            char e = _s[_pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (_pos + 4 > _s.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = _s[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // ASCII only (the tracer never emits more).
                out += static_cast<char>(code & 0x7f);
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++_pos;
            return v;
        }
        while (true) {
            std::string key = rawString();
            expect(':');
            v.obj.emplace_back(std::move(key), value());
            if (peek() == ',') {
                ++_pos;
                skipWs();
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++_pos;
            return v;
        }
        while (true) {
            v.arr.push_back(value());
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    const std::string &_s;
    std::size_t _pos = 0;
};

std::string
strField(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v && v->kind == JsonValue::Kind::String ? v->str : "";
}

double
numField(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v && v->kind == JsonValue::Kind::Number ? v->num : 0.0;
}

} // namespace

TraceFile
parseTraceJson(std::istream &is)
{
    std::string text(std::istreambuf_iterator<char>(is), {});
    // The DOM of a large trace is heavy; parse on the heap.
    auto root = std::make_unique<JsonValue>(JsonParser(text).parse());
    if (root->kind != JsonValue::Kind::Object)
        fatal("trace root is not a JSON object");
    const JsonValue *events = root->find("traceEvents");
    if (!events || events->kind != JsonValue::Kind::Array)
        fatal("trace has no traceEvents array");

    TraceFile out;
    for (const JsonValue &e : events->arr) {
        if (e.kind != JsonValue::Kind::Object)
            fatal("traceEvents entry is not an object");
        std::string ph = strField(e, "ph");
        if (ph == "M") {
            if (strField(e, "name") == "thread_name") {
                const JsonValue *args = e.find("args");
                if (args)
                    out.threadNames[static_cast<long long>(
                        numField(e, "tid"))] = strField(*args, "name");
            }
            continue;
        }
        TraceEventView ev;
        ev.ph = ph;
        ev.name = strField(e, "name");
        ev.cat = strField(e, "cat");
        ev.id = strField(e, "id");
        ev.tid = static_cast<long long>(numField(e, "tid"));
        ev.ts = numField(e, "ts");
        ev.dur = numField(e, "dur");
        if (const JsonValue *args = e.find("args")) {
            for (const auto &[k, v] : args->obj) {
                if (v.kind == JsonValue::Kind::Number)
                    ev.numArgs[k] = v.num;
                else if (v.kind == JsonValue::Kind::String)
                    ev.strArgs[k] = v.str;
            }
        }
        out.events.push_back(std::move(ev));
    }
    if (const JsonValue *other = root->find("otherData")) {
        for (const auto &[k, v] : other->obj) {
            if (v.kind == JsonValue::Kind::String)
                out.otherData[k] = v.str;
            else if (v.kind == JsonValue::Kind::Number)
                out.otherData[k] = std::to_string(
                    static_cast<long long>(v.num));
        }
        auto it = out.otherData.find("droppedEvents");
        if (it != out.otherData.end())
            out.droppedEvents = std::stoull(it->second);
    }
    return out;
}

TraceCheckResult
checkTrace(const TraceFile &f)
{
    TraceCheckResult res;
    res.events = f.events.size();
    bool lossless = f.droppedEvents == 0;

    auto err = [&](std::string msg) {
        if (res.errors.size() < 20)
            res.errors.push_back(std::move(msg));
        res.ok = false;
    };

    // Per-track B/E stacks.
    std::map<long long, std::vector<std::uint64_t>> stacks;
    // Async open counts per (cat, id).
    std::map<std::string, int> asyncNest;

    for (const TraceEventView &ev : f.events) {
        std::uint64_t tick = ev.tickArg("tick");
        if (ev.ph == "B") {
            stacks[ev.tid].push_back(tick);
        } else if (ev.ph == "E") {
            auto &st = stacks[ev.tid];
            if (st.empty()) {
                if (lossless)
                    err("E without matching B on tid "
                        + std::to_string(ev.tid) + " at tick "
                        + std::to_string(tick));
            } else {
                if (tick < st.back())
                    err("span ends before it begins on tid "
                        + std::to_string(ev.tid) + " ("
                        + std::to_string(st.back()) + " -> "
                        + std::to_string(tick) + ")");
                st.pop_back();
                ++res.spans;
            }
        } else if (ev.ph == "X") {
            if (ev.dur < 0)
                err("X event with negative dur at tick "
                    + std::to_string(tick));
            ++res.spans;
        } else if (ev.ph == "b") {
            ++asyncNest[ev.cat + "/" + ev.id];
        } else if (ev.ph == "e") {
            auto &n = asyncNest[ev.cat + "/" + ev.id];
            if (n <= 0 && lossless)
                err("async end without begin for id " + ev.id);
            else
                --n;
        } else if (ev.ph == "n") {
            // instant within an async group; nothing to pair
        } else if (ev.ph == "i") {
            ++res.instants;
        } else if (ev.ph == "C") {
            ++res.counters;
        } else {
            err("unknown phase '" + ev.ph + "'");
        }
    }

    for (const auto &[tid, st] : stacks)
        res.openAtEof += st.size();
    for (const auto &[key, n] : asyncNest)
        if (n > 0)
            res.asyncOpen += static_cast<std::size_t>(n);
    return res;
}

std::vector<FrameLifecycle>
frameLifecycles(const TraceFile &f)
{
    std::map<std::string, FrameLifecycle> byId;
    std::map<std::string, bool> sawBegin;
    for (const TraceEventView &ev : f.events) {
        if (ev.cat != "frame" || ev.id.empty())
            continue;
        if (ev.ph != "b" && ev.ph != "n" && ev.ph != "e")
            continue;
        FrameLifecycle &lc = byId[ev.id];
        lc.asyncId = ev.id;
        auto flowIt = ev.numArgs.find("flow");
        if (flowIt != ev.numArgs.end())
            lc.flow = static_cast<std::int64_t>(flowIt->second);
        auto frameIt = ev.numArgs.find("frame");
        if (frameIt != ev.numArgs.end())
            lc.frame = static_cast<std::int64_t>(frameIt->second);
        std::uint64_t tick = ev.tickArg("tick");
        if (ev.ph == "b") {
            lc.genTick = tick;
            sawBegin[ev.id] = true;
        } else if (ev.ph == "e") {
            lc.endTick = tick;
            lc.deadlineTick = ev.tickArg("deadlineTick");
            lc.complete = true;
        } else if (ev.name == "started") {
            lc.startTick = tick;
        } else {
            lc.stageMarks.emplace_back(tick, ev.name);
        }
    }
    std::vector<FrameLifecycle> out;
    out.reserve(byId.size());
    for (auto &[id, lc] : byId) {
        std::sort(lc.stageMarks.begin(), lc.stageMarks.end());
        // 'b' must have been seen for "complete" to mean anything
        // (a burst-scheduled frame may legitimately end before its
        // nominal generation tick, so ticks cannot be compared).
        lc.complete = lc.complete && sawBegin[id];
        out.push_back(std::move(lc));
    }
    return out;
}

} // namespace vip
