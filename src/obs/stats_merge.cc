#include "obs/stats_merge.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/json.hh"
#include "sim/logging.hh"

namespace vip
{

double
percentileSorted(const std::vector<double> &sorted, double pct)
{
    vip_assert(!sorted.empty(), "percentile of an empty sample");
    vip_assert(pct >= 0.0 && pct <= 100.0, "percentile ", pct);
    if (pct <= 0.0)
        return sorted.front();
    // Nearest-rank: the smallest value with at least pct% of the
    // sample at or below it.
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(pct / 100.0 * static_cast<double>(sorted.size())));
    if (rank == 0)
        rank = 1;
    if (rank > sorted.size())
        rank = sorted.size();
    return sorted[rank - 1];
}

std::map<std::string, StatAggregate>
aggregateStats(const std::vector<const StatsFile *> &shards)
{
    struct Series
    {
        std::vector<double> values;
        std::string unit;
    };
    std::map<std::string, Series> byPath;
    for (const StatsFile *f : shards) {
        if (!f)
            continue;
        for (const StatEntry &e : f->stats) {
            Series &s = byPath[e.path];
            if (s.values.empty())
                s.unit = e.unit;
            s.values.push_back(e.value);
        }
    }

    std::map<std::string, StatAggregate> out;
    for (auto &[path, series] : byPath) {
        std::vector<double> &v = series.values;
        std::sort(v.begin(), v.end());
        StatAggregate a;
        a.count = v.size();
        a.min = v.front();
        a.max = v.back();
        double sum = 0.0;
        for (double x : v)
            sum += x;
        a.mean = sum / static_cast<double>(v.size());
        a.p25 = percentileSorted(v, 25.0);
        a.p50 = percentileSorted(v, 50.0);
        a.p75 = percentileSorted(v, 75.0);
        a.p90 = percentileSorted(v, 90.0);
        a.p99 = percentileSorted(v, 99.0);
        a.unit = series.unit;
        out.emplace(path, std::move(a));
    }
    return out;
}

void
writeAggregateJson(std::ostream &os,
                   const std::map<std::string, StatAggregate> &agg,
                   const char *indent)
{
    auto num = [](double v) {
        // Full round-trip precision, but keep integers readable.
        char buf[40];
        if (std::isfinite(v) && v == std::floor(v) &&
            std::fabs(v) < 1e15) {
            std::snprintf(buf, sizeof(buf), "%.1f", v);
        } else {
            std::snprintf(buf, sizeof(buf), "%.17g", v);
        }
        return std::string(buf);
    };
    os << "{";
    bool first = true;
    for (const auto &[path, a] : agg) {
        os << (first ? "\n" : ",\n") << indent << "  "
           << json::quoted(path) << ": {\"count\": " << a.count
           << ", \"unit\": " << json::quoted(a.unit)
           << ", \"min\": " << num(a.min) << ", \"max\": " << num(a.max)
           << ", \"mean\": " << num(a.mean)
           << ", \"p25\": " << num(a.p25) << ", \"p50\": " << num(a.p50)
           << ", \"p75\": " << num(a.p75) << ", \"p90\": " << num(a.p90)
           << ", \"p99\": " << num(a.p99) << "}";
        first = false;
    }
    os << "\n" << indent << "}";
}

void
writeAggregateDocument(std::ostream &os,
                       const std::map<std::string, StatAggregate> &agg,
                       std::size_t shardCount,
                       const std::string &sweepName)
{
    os << "{\n"
       << "  \"kind\": \"vip-fleet-aggregate\",\n"
       << "  \"schemaVersion\": 1,\n"
       << "  \"name\": " << json::quoted(sweepName) << ",\n"
       << "  \"shards\": " << shardCount << ",\n"
       << "  \"aggregate\": ";
    writeAggregateJson(os, agg, "  ");
    os << "\n}\n";
}

} // namespace vip
