#include "obs/provenance.hh"

namespace vip
{

const char *
buildGitHash()
{
#ifdef VIP_GIT_HASH
    return VIP_GIT_HASH;
#else
    return "unknown";
#endif
}

const char *
buildCompiler()
{
#if defined(__clang__)
    return "clang " __clang_version__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return "unknown";
#endif
}

const char *
buildType()
{
#ifdef VIP_BUILD_TYPE
    return (VIP_BUILD_TYPE[0] != '\0') ? VIP_BUILD_TYPE : "unknown";
#else
    return "unknown";
#endif
}

std::vector<std::pair<std::string, std::string>>
provenanceFields()
{
    return {{"git", buildGitHash()},
            {"compiler", buildCompiler()},
            {"build", buildType()}};
}

std::vector<std::string>
provenanceMetaLines()
{
    std::vector<std::string> out;
    for (const auto &[k, v] : provenanceFields())
        out.push_back(k + "=" + v);
    return out;
}

} // namespace vip
