/**
 * @file
 * Periodic metrics sampler.
 *
 * Samples a set of registered probes (buffer/lane occupancy, credits,
 * DRAM bandwidth, power states, ...) every N simulated milliseconds
 * and dumps the time series as CSV.  Sampling runs at
 * EventPriority::Stats so each row observes post-update state.
 *
 * With streamTo() set, every sampled row is also appended (and
 * flushed) to the output file as it is taken, so the series survives
 * a run killed by the no-progress guard or a SimFatal — the flight
 * recorder points at this file from its crash bundle.
 *
 * Unlike the Tracer, the sampler *does* schedule events, which
 * perturbs the event queue's scheduling digest — so it is only
 * constructed when --metrics-out is given.
 */

#ifndef VIP_OBS_METRICS_HH
#define VIP_OBS_METRICS_HH

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace vip
{

class System;
class SnapshotWriter;
class SnapshotReader;

class MetricsSampler
{
  public:
    using Probe = std::function<double()>;

    MetricsSampler(System &sys, Tick interval);
    ~MetricsSampler();

    /** Register a named probe; call before start(). */
    void addProbe(std::string name, Probe fn);

    /**
     * Stream rows incrementally to @p path: the header is written at
     * start(), each sampled row is appended and flushed immediately.
     * Call before start().
     */
    void streamTo(std::string path);

    /** Schedule the first sample one interval from now. */
    void start();

    /**
     * Re-open the incremental stream after a checkpoint restore:
     * append mode (the rows streamed before the checkpoint stay in
     * place, no second header), stamped with a '# resumed-at-tick='
     * comment so the seam is visible in the CSV.  The pending sample
     * event itself is restored by loadState(); call resume() after
     * it, in place of start().
     */
    void resume();

    /** @{ checkpoint serialization (pending event + sampled rows) */
    void saveState(SnapshotWriter &w) const;
    void loadState(SnapshotReader &r);
    /** @} */

    std::size_t rows() const { return _ticks.size(); }
    std::size_t probes() const { return _probes.size(); }
    Tick interval() const { return _interval; }
    const std::string &streamPath() const { return _path; }
    /** True once start() opened the incremental stream. */
    bool streaming() const { return _stream != nullptr; }

    /**
     * Write the full time series as CSV: '#'-prefixed provenance
     * header, one column per probe, one row per sample.  Redundant
     * when streamTo() is active (the file already has every row).
     */
    void writeCsv(std::ostream &os) const;

  private:
    void sampleNow();
    void writeHeader(std::ostream &os) const;
    void writeRow(std::ostream &os, std::size_t r) const;

    System &_sys;
    Tick _interval;
    std::vector<std::pair<std::string, Probe>> _probes;
    std::vector<Tick> _ticks;
    std::vector<double> _data; ///< rows() * probes(), row-major
    std::string _path;
    std::unique_ptr<std::ofstream> _stream;
    EventId _sampleEvent = InvalidEventId; ///< next pending sample
};

} // namespace vip

#endif // VIP_OBS_METRICS_HH
