/**
 * @file
 * Periodic metrics sampler.
 *
 * Samples a set of registered probes (buffer/lane occupancy, credits,
 * DRAM bandwidth, power states, ...) every N simulated milliseconds
 * and dumps the time series as CSV.  Sampling runs at
 * EventPriority::Stats so each row observes post-update state.
 *
 * Unlike the Tracer, the sampler *does* schedule events, which
 * perturbs the event queue's scheduling digest — so it is only
 * constructed when --metrics-out is given.
 */

#ifndef VIP_OBS_METRICS_HH
#define VIP_OBS_METRICS_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace vip
{

class System;

class MetricsSampler
{
  public:
    using Probe = std::function<double()>;

    MetricsSampler(System &sys, Tick interval);

    /** Register a named probe; call before start(). */
    void addProbe(std::string name, Probe fn);

    /** Schedule the first sample one interval from now. */
    void start();

    std::size_t rows() const { return _ticks.size(); }
    std::size_t probes() const { return _probes.size(); }
    Tick interval() const { return _interval; }

    /**
     * Write the time series as CSV: '#'-prefixed provenance header,
     * one column per probe, one row per sample.
     */
    void writeCsv(std::ostream &os) const;

  private:
    void sampleNow();

    System &_sys;
    Tick _interval;
    std::vector<std::pair<std::string, Probe>> _probes;
    std::vector<Tick> _ticks;
    std::vector<double> _data; ///< rows() * probes(), row-major
};

} // namespace vip

#endif // VIP_OBS_METRICS_HH
