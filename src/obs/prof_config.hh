/**
 * @file
 * Hot-path self-profiler configuration (--prof).
 *
 * Kept in its own tiny header (like trace_config.hh) so SocConfig can
 * embed it without pulling the profiler implementation into every
 * translation unit.
 */

#ifndef VIP_OBS_PROF_CONFIG_HH
#define VIP_OBS_PROF_CONFIG_HH

#include <cstdint>
#include <string>

namespace vip
{

/**
 * Where and how densely the simulator profiles itself.  A non-empty
 * output path enables the profiler; everything it measures is purely
 * observational (no scheduled events, no randomness, nothing in any
 * stateDigest()), so enabling it leaves audit digest streams
 * bit-identical — and it is deliberately excluded from checkpoint
 * identity, so a resume may toggle it freely.
 */
struct ProfConfig
{
    /** prof.json destination; empty = profiler off. */
    std::string out;

    /**
     * Wall-clock timing cadence: every Nth dispatched event is timed
     * with steady_clock and contributes a queue-occupancy sample.
     * Per-kind dispatch *counts* are exact regardless.  The default
     * keeps measured overhead under the 5% budget
     * (bench_microbench --sim-throughput reports the actual figure).
     */
    std::uint64_t sampleEvery = 64;

    bool enabled() const { return !out.empty(); }
};

} // namespace vip

#endif // VIP_OBS_PROF_CONFIG_HH
