/**
 * @file
 * Postmortem flight recorder: crash bundles for dead runs.
 *
 * When a run dies — SimFatal (config errors, the no-progress guard,
 * watchdog exhaustion escalated by the fault layer), SimPanic
 * (internal bugs), or a strict-audit violation — the last thing the
 * Simulation does before rethrowing is write a crash bundle to
 * `--postmortem-dir`:
 *
 *   <dir>/crash.json      what died, where, and the final state
 *                         digest + active fault plan
 *   <dir>/stats.json      full counter snapshot at time of death
 *   <dir>/trace-tail.json last-N events from the trace ring
 *                         (Chrome trace_event, loadable in Perfetto)
 *
 * The recorder itself must never make things worse: every write is
 * best-effort, failures are warn()'d and swallowed, and nothing here
 * runs on the simulation's hot path.
 */

#ifndef VIP_OBS_FLIGHT_RECORDER_HH
#define VIP_OBS_FLIGHT_RECORDER_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace vip
{

class StatRegistry;
class Tracer;

/** Everything crash.json records about the death. */
struct PostmortemInfo
{
    std::string reason; ///< the exception's what()
    std::string kind;   ///< "fatal", "panic", or "audit"
    Tick tick = 0;      ///< simulated time of death
    std::uint64_t stateDigest = 0; ///< folded component digest
    std::string faultPlan; ///< FaultPlan::describe(), "" when none
    /** Run context: workload, config, seed, seconds. */
    std::vector<std::pair<std::string, std::string>> meta;
    /** Where the incremental metrics CSV lives, "" when disabled. */
    std::string metricsPath;
    /** Newest checkpoint-ring snapshot, "" when none was written;
     *  rerunning with --restore=<checkpointPath> resumes the run. */
    std::string checkpointPath;
    Tick checkpointTick = 0;
};

/**
 * Write a crash bundle into @p dir (created if needed).  @p registry
 * and @p tracer may be null; the bundle then omits stats.json /
 * trace-tail.json.  Returns true when every applicable file was
 * written.  Never throws.
 */
bool writePostmortemBundle(const std::string &dir,
                           const PostmortemInfo &info,
                           const StatRegistry *registry,
                           const Tracer *tracer);

} // namespace vip

#endif // VIP_OBS_FLIGHT_RECORDER_HH
