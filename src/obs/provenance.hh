/**
 * @file
 * Build provenance stamped into every artifact (bench JSON, digest
 * streams, trace headers) so outputs from different builds are never
 * silently compared.
 */

#ifndef VIP_OBS_PROVENANCE_HH
#define VIP_OBS_PROVENANCE_HH

#include <string>
#include <utility>
#include <vector>

namespace vip
{

/** Short git hash of the build tree ("unknown" outside a checkout). */
const char *buildGitHash();

/** Compiler id and version, e.g. "gcc 13.2.0". */
const char *buildCompiler();

/** CMAKE_BUILD_TYPE at configure time ("unknown" if unset). */
const char *buildType();

/** {git, compiler, build} as key/value pairs for JSON headers. */
std::vector<std::pair<std::string, std::string>> provenanceFields();

/** "git=...", "compiler=...", "build=..." lines for digest streams. */
std::vector<std::string> provenanceMetaLines();

} // namespace vip

#endif // VIP_OBS_PROVENANCE_HH
