#include "obs/profiler.hh"

#include <algorithm>
#include <cstring>
#include <ostream>

#include "obs/provenance.hh"

namespace vip
{

/**
 * Every kind tag the component schedule() sites use.  New tags must
 * be added here too: the catalog drives the pre-registered prof.*
 * stat namespace, and a tag missing from it would profile correctly
 * but export no stats.  "other" collects untagged events.
 */
const char *const kProfKindCatalog[] = {
    "ip.unit",     ///< stream-engine unit completion
    "ip.watchdog", ///< per-unit fault watchdog timer
    "ip.gen",      ///< source-IP frame generation
    "dram.burst",  ///< DRAM transaction service completion
    "dram.bw",     ///< bandwidth-window sampling
    "dram.lp",     ///< low-power state timer
    "sa.transfer", ///< system-agent transfer delivery
    "sa.signal",   ///< doorbell/completion signal latency
    "cpu.wake",    ///< core wake latency
    "cpu.task",    ///< software task completion
    "cpu.gov",     ///< DVFS governor tick
    "cpu.sleep",   ///< idle sleep timer
    "flow.gen",    ///< application frame generation
    "flow.input",  ///< touch/input injection
    "obs.metrics", ///< periodic metrics sampling
    "sim.audit",   ///< periodic invariant audit
    "sim.guard",   ///< no-progress guard check
    "sim.stop",    ///< scheduled app stop
    "other",       ///< untagged events
};
const std::size_t kProfKindCatalogSize =
    sizeof(kProfKindCatalog) / sizeof(kProfKindCatalog[0]);

Profiler::Profiler(const ProfConfig &cfg)
    : _sampleEvery(cfg.sampleEvery == 0 ? 1 : cfg.sampleEvery)
{
    _used.reserve(kSlots);
    _timeline.reserve(kTimelineCap);
}

std::uint64_t
Profiler::dispatches() const
{
    std::uint64_t n = 0;
    for (std::size_t i : _used)
        n += _table[i].count;
    return n;
}

std::uint64_t
Profiler::sampledDispatches() const
{
    std::uint64_t n = 0;
    for (std::size_t i : _used)
        n += _table[i].sampled;
    return n;
}

std::vector<ProfKindRow>
Profiler::rows() const
{
    // Merge slots by name: identical literals in different
    // translation units may have distinct addresses, so the hot path
    // counts per pointer and the report folds per name.
    std::vector<ProfKindRow> out;
    for (std::size_t i : _used) {
        const KindSlot &s = _table[i];
        ProfKindRow *row = nullptr;
        for (ProfKindRow &r : out) {
            if (std::strcmp(r.kind.c_str(), s.kind) == 0) {
                row = &r;
                break;
            }
        }
        if (!row) {
            out.push_back(ProfKindRow{});
            row = &out.back();
            row->kind = s.kind;
        }
        row->count += s.count;
        row->sampled += s.sampled;
        row->wallNs += s.wallNs;
    }
    std::sort(out.begin(), out.end(),
              [](const ProfKindRow &a, const ProfKindRow &b) {
                  const double ea = a.estTotalNs();
                  const double eb = b.estTotalNs();
                  if (ea != eb)
                      return ea > eb;
                  if (a.count != b.count)
                      return a.count > b.count;
                  return a.kind < b.kind;
              });
    return out;
}

double
Profiler::countFor(const char *kind) const
{
    double n = 0.0;
    for (std::size_t i : _used) {
        if (_table[i].kind == kind ||
            std::strcmp(_table[i].kind, kind) == 0)
            n += static_cast<double>(_table[i].count);
    }
    return n;
}

double
Profiler::wallNsFor(const char *kind) const
{
    double n = 0.0;
    for (std::size_t i : _used) {
        if (_table[i].kind == kind ||
            std::strcmp(_table[i].kind, kind) == 0)
            n += static_cast<double>(_table[i].wallNs);
    }
    return n;
}

void
Profiler::writeJson(
    std::ostream &os, double simMs,
    const std::vector<std::pair<std::string, std::string>> &runMeta)
    const
{
    const std::vector<ProfKindRow> table = rows();
    const std::uint64_t events = dispatches();
    const std::uint64_t sampled = sampledDispatches();

    // Wall time attributed to sampled callbacks, scaled up by the
    // sampling ratio: the remainder of runWallMs is the loop itself
    // (heap ops, compaction, audit hashing between events).
    double estCallbackNs = 0.0;
    for (const ProfKindRow &r : table)
        estCallbackNs += r.estTotalNs();

    os << "{\n"
       << "  \"kind\": \"vip-prof\",\n"
       << "  \"schemaVersion\": " << kSchemaVersion << ",\n";
    os << "  \"run\": {";
    for (std::size_t i = 0; i < runMeta.size(); ++i) {
        os << (i ? ", " : "") << "\"" << runMeta[i].first << "\": \""
           << runMeta[i].second << "\"";
    }
    os << "},\n";
    os << "  \"provenance\": {";
    {
        bool first = true;
        for (const std::string &line : provenanceMetaLines()) {
            const auto eq = line.find('=');
            if (eq == std::string::npos)
                continue;
            os << (first ? "" : ", ") << "\"" << line.substr(0, eq)
               << "\": \"" << line.substr(eq + 1) << "\"";
            first = false;
        }
    }
    os << "},\n";
    os << "  \"sim_ms\": " << simMs << ",\n"
       << "  \"wall_ms\": " << _runWallMs << ",\n"
       << "  \"sample_every\": " << _sampleEvery << ",\n"
       << "  \"events\": " << events << ",\n"
       << "  \"sampled\": " << sampled << ",\n"
       << "  \"est_callback_ms\": " << estCallbackNs / 1e6 << ",\n";

    os << "  \"eventq\": {\n"
       << "    \"max_pending\": " << _maxPending << ",\n"
       << "    \"max_heap\": " << _maxHeap << ",\n"
       << "    \"compactions\": " << _compactions << ",\n"
       << "    \"timeline_stride\": " << timelineStride() << ",\n"
       << "    \"timeline\": [";
    for (std::size_t i = 0; i < _timeline.size(); ++i) {
        const ProfQueueSample &s = _timeline[i];
        os << (i ? ",\n      " : "\n      ") << "{\"tick\": "
           << s.tick << ", \"pending\": " << s.pending
           << ", \"heap\": " << s.heap << "}";
    }
    os << (_timeline.empty() ? "]" : "\n    ]") << "\n  },\n";

    os << "  \"alloc\": {\"frame_cursor_bytes\": " << _allocCursor
       << "},\n";

    os << "  \"kinds\": [\n";
    for (std::size_t i = 0; i < table.size(); ++i) {
        const ProfKindRow &r = table[i];
        os << "    {\"kind\": \"" << r.kind
           << "\", \"count\": " << r.count
           << ", \"sampled\": " << r.sampled
           << ", \"wall_ns\": " << r.wallNs
           << ", \"est_total_ns\": " << r.estTotalNs() << "}"
           << (i + 1 < table.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

} // namespace vip
