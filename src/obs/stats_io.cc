#include "obs/stats_io.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>

#include "obs/json.hh"
#include "sim/logging.hh"

namespace vip
{

namespace
{

using json::JsonValue;

/**
 * Near-zero timing values (an idle IP's busy_ms, an empty
 * histogram's p99) would fail any percentage band on denormal-scale
 * noise; differences below this floor are never violations.
 */
constexpr double kAbsoluteFloor = 1e-9;

std::map<std::string, std::string>
stringMap(const JsonValue *obj)
{
    std::map<std::string, std::string> out;
    if (!obj || obj->kind != JsonValue::Kind::Object)
        return out;
    for (const auto &[k, v] : obj->obj) {
        if (v.kind == JsonValue::Kind::String)
            out[k] = v.str;
        else if (v.kind == JsonValue::Kind::Number)
            out[k] = std::to_string(v.num);
    }
    return out;
}

/** Longest-match tolerance override for @p path, or "". */
std::string
overrideFor(const ToleranceOverrides &overrides,
            const std::string &path)
{
    std::string best;
    std::size_t bestLen = 0;
    for (const auto &[key, rule] : overrides) {
        bool match;
        std::size_t len;
        if (!key.empty() && key.back() == '*') {
            std::string prefix = key.substr(0, key.size() - 1);
            match = path.rfind(prefix, 0) == 0;
            len = prefix.size();
        } else {
            match = path == key;
            // An exact key always beats any prefix key.
            len = key.size() + 1;
        }
        if (match && (best.empty() || len > bestLen)) {
            best = rule;
            bestLen = len;
        }
    }
    return best;
}

} // namespace

const StatEntry *
StatsFile::find(const std::string &path) const
{
    for (const StatEntry &e : stats)
        if (e.path == path)
            return &e;
    return nullptr;
}

StatsFile
parseStatsJson(std::istream &is)
{
    JsonValue root = json::parse(is);
    if (root.kind != JsonValue::Kind::Object)
        fatal("stats root is not a JSON object");
    if (json::strField(root, "kind") != "vip-stats")
        fatal("not a vip-stats file (kind != \"vip-stats\")");

    StatsFile out;
    out.schemaVersion =
        static_cast<int>(json::numField(root, "schemaVersion"));
    out.provenance = stringMap(root.find("provenance"));
    out.run = stringMap(root.find("run"));

    const JsonValue *stats = root.find("stats");
    if (!stats || stats->kind != JsonValue::Kind::Array)
        fatal("stats file has no stats array");
    for (const JsonValue &e : stats->arr) {
        if (e.kind != JsonValue::Kind::Object)
            fatal("stats array entry is not an object");
        StatEntry s;
        s.path = json::strField(e, "path");
        s.value = json::numField(e, "value");
        s.unit = json::strField(e, "unit");
        s.tol = json::strField(e, "tol");
        s.desc = json::strField(e, "desc");
        if (s.path.empty())
            fatal("stats array entry has no path");
        out.stats.push_back(std::move(s));
    }
    return out;
}

bool
valuesWithinTolerance(const std::string &rule, double baseline,
                      double candidate)
{
    if (rule.rfind("pct:", 0) == 0) {
        double band = std::atof(rule.c_str() + 4);
        double diff = std::fabs(candidate - baseline);
        double scale =
            std::max(std::fabs(baseline), std::fabs(candidate));
        return diff <= std::max(band / 100.0 * scale, kAbsoluteFloor);
    }
    // "exact" and anything unrecognized: bit-for-bit.
    return baseline == candidate;
}

StatsComparison
compareStats(const StatsFile &baseline, const StatsFile &candidate,
             const ToleranceOverrides &overrides)
{
    StatsComparison res;
    auto violate = [&](std::string msg) {
        res.ok = false;
        res.violations.push_back(std::move(msg));
    };

    if (baseline.schemaVersion != candidate.schemaVersion) {
        violate("schemaVersion mismatch: baseline "
                + std::to_string(baseline.schemaVersion)
                + " vs candidate "
                + std::to_string(candidate.schemaVersion));
    }
    // Comparing a W4/vip run against a W1/baseline run is a harness
    // bug, not a perf regression; refuse rather than mis-diagnose.
    for (const auto &[k, v] : baseline.run) {
        auto it = candidate.run.find(k);
        if (it == candidate.run.end() || it->second != v) {
            violate("run context mismatch on \"" + k + "\": baseline \""
                    + v + "\" vs candidate \""
                    + (it == candidate.run.end() ? std::string("<missing>")
                                                 : it->second)
                    + "\"");
        }
    }

    for (const StatEntry &b : baseline.stats) {
        const StatEntry *c = candidate.find(b.path);
        if (!c) {
            violate(b.path + ": missing from candidate");
            continue;
        }
        ++res.compared;
        std::string rule = overrideFor(overrides, b.path);
        if (rule.empty())
            rule = b.tol;
        if (!valuesWithinTolerance(rule, b.value, c->value)) {
            char buf[192];
            std::snprintf(buf, sizeof(buf),
                          "%s: baseline %.9g vs candidate %.9g "
                          "(rule %s)",
                          b.path.c_str(), b.value, c->value,
                          rule.c_str());
            violate(buf);
        }
    }
    for (const StatEntry &c : candidate.stats) {
        if (!baseline.find(c.path))
            violate(c.path + ": not present in baseline (new stat? "
                            "regenerate bench/baseline/)");
    }
    return res;
}

} // namespace vip
