#include "obs/latency.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "obs/stat_registry.hh"
#include "sim/snapshot.hh"

namespace vip
{

std::size_t
LogHistogram::bucketOf(Tick v)
{
    if (v < kSubBuckets)
        return static_cast<std::size_t>(v);
    unsigned major = std::bit_width(v) - 1; // MSB position, >= kSubBits
    unsigned shift = major - kSubBits;
    std::size_t sub = static_cast<std::size_t>((v >> shift)
                                               & (kSubBuckets - 1));
    return kSubBuckets + std::size_t{major - kSubBits} * kSubBuckets
           + sub;
}

Tick
LogHistogram::bucketMid(std::size_t b)
{
    if (b < kSubBuckets)
        return static_cast<Tick>(b);
    unsigned shift = static_cast<unsigned>((b - kSubBuckets)
                                           / kSubBuckets);
    Tick sub = static_cast<Tick>((b - kSubBuckets) % kSubBuckets);
    Tick lo = (Tick{kSubBuckets} + sub) << shift;
    Tick width = Tick{1} << shift;
    return lo + width / 2;
}

void
LogHistogram::sample(Tick v)
{
    std::size_t b = bucketOf(v);
    if (b >= _bins.size())
        _bins.resize(b + 1, 0);
    ++_bins[b];
    ++_count;
    _min = std::min(_min, v);
    _max = std::max(_max, v);
    _sum += static_cast<double>(v);
}

double
LogHistogram::mean() const
{
    return _count ? _sum / static_cast<double>(_count) : 0.0;
}

Tick
LogHistogram::percentile(double p) const
{
    if (!_count)
        return 0;
    double want = std::ceil(p / 100.0 * static_cast<double>(_count));
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::clamp(want, 1.0, static_cast<double>(_count)));
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < _bins.size(); ++b) {
        cum += _bins[b];
        if (cum >= rank)
            return std::clamp(bucketMid(b), _min, _max);
    }
    return _max;
}

namespace
{

LatencyBreakdown
breakdownOf(const LogHistogram &h)
{
    LatencyBreakdown b;
    b.count = h.count();
    b.meanMs = h.mean() / 1e9; // ticks (ps) -> ms
    b.p50Ms = toMs(h.percentile(50));
    b.p95Ms = toMs(h.percentile(95));
    b.p99Ms = toMs(h.percentile(99));
    b.maxMs = toMs(h.max());
    return b;
}

} // namespace

void
LatencyCollector::recordFrame(Tick endToEnd, Tick transit)
{
    _endToEnd.sample(endToEnd);
    _transit.sample(transit);
}

void
LatencyCollector::recordStage(const std::string &stage, Tick wait,
                              Tick compute, Tick blocked, Tick total)
{
    StageHists &s = _stages[stage];
    s.wait.sample(wait);
    s.compute.sample(compute);
    s.blocked.sample(blocked);
    s.total.sample(total);
}

void
LatencyCollector::recordSaTransfer(Tick duration)
{
    _sa.sample(duration);
}

void
LatencyCollector::recordDramBurst(Tick service)
{
    _dram.sample(service);
}

LatencySummary
LatencyCollector::summarize() const
{
    LatencySummary out;
    out.endToEnd = breakdownOf(_endToEnd);
    out.transit = breakdownOf(_transit);
    out.saTransfer = breakdownOf(_sa);
    out.dramBurst = breakdownOf(_dram);
    for (const auto &[name, hists] : _stages) {
        StageLatency s;
        s.stage = name;
        s.wait = breakdownOf(hists.wait);
        s.compute = breakdownOf(hists.compute);
        s.blocked = breakdownOf(hists.blocked);
        s.total = breakdownOf(hists.total);
        out.stages.push_back(std::move(s));
    }
    return out;
}

void
LatencyCollector::registerStats(StatRegistry &r) const
{
    r.addLogHistogramMs("latency.end_to_end",
                        "frame generation -> sink", _endToEnd);
    r.addLogHistogramMs("latency.transit", "first start -> sink",
                        _transit);
    r.addLogHistogramMs("latency.sa_transfer",
                        "per-transfer SA link occupancy", _sa);
    r.addLogHistogramMs("latency.dram_burst",
                        "per-burst DRAM service time", _dram);
}

void
LogHistogram::saveState(SnapshotWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(_bins.size()));
    for (std::uint64_t b : _bins)
        w.u64(b);
    w.u64(_count);
    w.tick(_min);
    w.tick(_max);
    w.d(_sum);
}

void
LogHistogram::loadState(SnapshotReader &r)
{
    std::uint32_t n = r.u32();
    _bins.assign(n, 0);
    for (std::uint32_t i = 0; i < n; ++i)
        _bins[i] = r.u64();
    _count = r.u64();
    _min = r.tick();
    _max = r.tick();
    _sum = r.d();
}

void
LatencyCollector::saveState(SnapshotWriter &w) const
{
    _endToEnd.saveState(w);
    _transit.saveState(w);
    _sa.saveState(w);
    _dram.saveState(w);
    // The stage map is ordered by name, so iteration is stable.
    w.u32(static_cast<std::uint32_t>(_stages.size()));
    for (const auto &[name, hists] : _stages) {
        w.str(name);
        hists.wait.saveState(w);
        hists.compute.saveState(w);
        hists.blocked.saveState(w);
        hists.total.saveState(w);
    }
}

void
LatencyCollector::loadState(SnapshotReader &r)
{
    _endToEnd.loadState(r);
    _transit.loadState(r);
    _sa.loadState(r);
    _dram.loadState(r);
    std::uint32_t n = r.u32();
    _stages.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string name = r.str();
        StageHists &hists = _stages[name];
        hists.wait.loadState(r);
        hists.compute.loadState(r);
        hists.blocked.loadState(r);
        hists.total.loadState(r);
    }
}

} // namespace vip
