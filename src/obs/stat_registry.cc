#include "obs/stat_registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/json.hh"
#include "obs/latency.hh"
#include "obs/provenance.hh"
#include "sim/logging.hh"
#include "stats/stats.hh"

namespace vip
{

namespace
{

/**
 * Shortest round-trippable formatting: %.17g renders doubles
 * losslessly but noisily; %.9g is plenty for counters and timing
 * values and keeps the file diffable by eye.  NaN/inf never appear
 * (writeJson rejects them).
 */
std::string
formatNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

void
StatRegistry::add(StatDef def)
{
    vip_assert(!def.path.empty(), "stat path must not be empty");
    vip_assert(static_cast<bool>(def.get),
               "stat needs a getter: ", def.path);
    if (!_paths.insert(def.path).second)
        panic("duplicate stat path registered: ", def.path);
    _defs.push_back(std::move(def));
}

void
StatRegistry::addScalar(std::string path, std::string unit,
                        const stats::Scalar &s)
{
    const stats::Scalar *p = &s;
    addExact(std::move(path), s.desc(), std::move(unit),
             [p] { return p->value(); });
}

void
StatRegistry::addTimeWeighted(std::string path, std::string unit,
                              const stats::TimeWeighted &s)
{
    const stats::TimeWeighted *p = &s;
    addTiming(std::move(path), s.desc(), std::move(unit),
              [p] { return p->average(); });
}

void
StatRegistry::addAccumulator(std::string path, std::string unit,
                             const stats::Accumulator &s)
{
    const stats::Accumulator *p = &s;
    addExact(path + ".count", s.desc() + " (samples)", "samples",
             [p] { return static_cast<double>(p->count()); });
    addTiming(path + ".mean", s.desc() + " (mean)", unit,
              [p] { return p->mean(); });
    addTiming(path + ".min", s.desc() + " (min)", unit,
              [p] { return p->min(); });
    addTiming(path + ".max", s.desc() + " (max)", unit,
              [p] { return p->max(); });
}

void
StatRegistry::addLogHistogramMs(std::string path, std::string desc,
                                const LogHistogram &h)
{
    const LogHistogram *p = &h;
    auto ms = [](Tick t) { return static_cast<double>(t) / 1e9; };
    addExact(path + ".count", desc + " (samples)", "samples",
             [p] { return static_cast<double>(p->count()); });
    addTiming(path + ".mean_ms", desc + " (mean)", "ms",
              [p] { return p->mean() / 1e9; });
    addTiming(path + ".p50_ms", desc + " (p50)", "ms",
              [p, ms] { return ms(p->percentile(50)); });
    addTiming(path + ".p95_ms", desc + " (p95)", "ms",
              [p, ms] { return ms(p->percentile(95)); });
    addTiming(path + ".p99_ms", desc + " (p99)", "ms",
              [p, ms] { return ms(p->percentile(99)); });
    addTiming(path + ".max_ms", desc + " (max)", "ms",
              [p, ms] { return ms(p->max()); });
}

CounterHandle
StatRegistry::counter(std::string path, std::string desc,
                      std::string unit)
{
    _slots.push_back(0.0);
    double *slot = &_slots.back();
    addExact(std::move(path), std::move(desc), std::move(unit),
             [slot] { return *slot; });
    return CounterHandle(slot);
}

bool
StatRegistry::has(const std::string &path) const
{
    return _paths.count(path) != 0;
}

std::vector<std::pair<std::string, double>>
StatRegistry::snapshot() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(_defs.size());
    for (const StatDef &d : _defs)
        out.emplace_back(d.path, d.get());
    std::sort(out.begin(), out.end());
    return out;
}

void
StatRegistry::writeJson(
    std::ostream &os,
    const std::vector<std::pair<std::string, std::string>> &meta) const
{
    // Sort by path so the file is stable under registration-order
    // changes: vip_stats_diff keys on paths, but humans diff files.
    std::vector<const StatDef *> order;
    order.reserve(_defs.size());
    for (const StatDef &d : _defs)
        order.push_back(&d);
    std::sort(order.begin(), order.end(),
              [](const StatDef *a, const StatDef *b) {
                  return a->path < b->path;
              });

    os << "{\n";
    os << "  \"schemaVersion\": " << kStatsSchemaVersion << ",\n";
    os << "  \"kind\": \"vip-stats\",\n";
    os << "  \"provenance\": {";
    bool first = true;
    for (const auto &[k, v] : provenanceFields()) {
        os << (first ? "" : ", ") << '"' << k << "\": \"" << v << '"';
        first = false;
    }
    os << "},\n";
    os << "  \"run\": {";
    first = true;
    for (const auto &[k, v] : meta) {
        os << (first ? "" : ", ") << '"' << k << "\": \"" << v << '"';
        first = false;
    }
    os << "},\n";
    os << "  \"stats\": [\n";
    for (std::size_t i = 0; i < order.size(); ++i) {
        const StatDef &d = *order[i];
        double v = d.get();
        if (!std::isfinite(v)) {
            warn("stat ", d.path, " is not finite; dumping as 0");
            v = 0.0;
        }
        os << "    {\"path\": \"" << d.path << "\", \"value\": "
           << formatNumber(v) << ", \"unit\": \"" << d.unit
           << "\", \"tol\": \"";
        if (d.tol == Tolerance::Exact)
            os << "exact";
        else
            os << "pct:" << formatNumber(d.tolPct);
        os << "\", \"desc\": " << json::quoted(d.desc) << "}"
           << (i + 1 < order.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
}

} // namespace vip
