#include "obs/tracer.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>

#include "obs/provenance.hh"
#include "sim/logging.hh"

namespace vip
{

namespace
{

constexpr int kTraceSchemaVersion = 1;

const struct { const char *name; TraceCat cat; } kCats[] = {
    {"ip", TraceCat::Ip},       {"frame", TraceCat::Frame},
    {"sa", TraceCat::Sa},       {"dram", TraceCat::Dram},
    {"cpu", TraceCat::Cpu},     {"sched", TraceCat::Sched},
    {"fault", TraceCat::Fault}, {"power", TraceCat::Power},
};

/** JSON-escape a string (control chars, quotes, backslashes). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Format ticks (ps) as microseconds with fixed precision. */
std::string
usString(Tick t)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06" PRIu64,
                  t / 1000000, t % 1000000);
    return buf;
}

std::string
doubleString(double v)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

const char *
traceCatName(TraceCat cat)
{
    for (const auto &c : kCats)
        if (c.cat == cat)
            return c.name;
    return "?";
}

std::uint32_t
parseTraceCats(const std::string &spec)
{
    if (spec.empty() || spec == "all")
        return kAllTraceCats;
    std::uint32_t mask = 0;
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        std::size_t comma = spec.find(',', pos);
        if (comma == std::string::npos)
            comma = spec.size();
        std::string tok = spec.substr(pos, comma - pos);
        bool found = false;
        for (const auto &c : kCats) {
            if (tok == c.name) {
                mask |= static_cast<std::uint32_t>(c.cat);
                found = true;
                break;
            }
        }
        if (tok == "all") {
            mask = kAllTraceCats;
            found = true;
        }
        if (!found)
            fatal("unknown trace category '", tok,
                  "' (expected ip,frame,sa,dram,cpu,sched,fault,power"
                  " or all)");
        pos = comma + 1;
        if (comma == spec.size())
            break;
    }
    return mask;
}

std::string
traceCatsToString(std::uint32_t mask)
{
    if ((mask & kAllTraceCats) == kAllTraceCats)
        return "all";
    std::string out;
    for (const auto &c : kCats) {
        if (mask & static_cast<std::uint32_t>(c.cat)) {
            if (!out.empty())
                out += ',';
            out += c.name;
        }
    }
    return out;
}

Tracer::Tracer(std::uint32_t categories, std::size_t capacity)
    : _categories(categories),
      _nBlocks((std::max<std::size_t>(capacity, 1) + kBlockEvents - 1)
               / kBlockEvents)
{
}

std::uint32_t
Tracer::intern(const std::string &s)
{
    auto it = _index.find(s);
    if (it != _index.end())
        return it->second;
    // TraceEvent stores the id in 16 bits; the table holds a few
    // strings per component, so the bound is generous.
    if (_strings.size() >= 0xfffe)
        fatal("trace string table overflow (", _strings.size(),
              " interned strings)");
    _strings.push_back(s);
    std::uint32_t id = static_cast<std::uint32_t>(_strings.size());
    _index.emplace(s, id);
    return id;
}

void
Tracer::writeJson(
    std::ostream &os,
    const std::vector<std::pair<std::string, std::string>> &meta) const
{
    os << "{\n\"traceEvents\": [\n";

    // Metadata: one process, one named thread per track used.
    os << "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
          "\"process_name\", \"args\": {\"name\": \"vip-sim\"}}";
    std::vector<bool> used(_strings.size() + 1, false);
    forEach([&](const TraceEvent &ev) {
        if (ev.track && ev.track <= _strings.size())
            used[ev.track] = true;
    });
    for (std::uint32_t t = 1; t <= _strings.size(); ++t) {
        if (!used[t])
            continue;
        os << ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": " << t
           << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
           << jsonEscape(_strings[t - 1]) << "\"}}";
    }

    forEach([&](const TraceEvent &ev) {
        const char *name = ev.name && ev.name <= _strings.size()
                               ? _strings[ev.name - 1].c_str()
                               : "";
        os << ",\n{\"ph\": \"" << ev.ph << "\", \"pid\": 1, \"tid\": "
           << ev.track << ", \"ts\": " << usString(ev.ts);
        if (ev.ph != 'E')
            os << ", \"name\": \"" << jsonEscape(name) << "\"";
        os << ", \"cat\": \""
           << traceCatName(static_cast<TraceCat>(1u << ev.cat)) << "\"";
        if (ev.ph == 'X')
            os << ", \"dur\": " << usString(ev.dur);
        if (ev.ph == 'b' || ev.ph == 'n' || ev.ph == 'e') {
            char idbuf[32];
            std::snprintf(idbuf, sizeof(idbuf), "0x%" PRIx64,
                          frameAsyncId(
                              static_cast<std::uint32_t>(ev.flow),
                              static_cast<std::uint32_t>(ev.frame)));
            os << ", \"id\": \"" << idbuf << "\"";
        }
        if (ev.ph == 'i')
            os << ", \"s\": \"t\"";
        // Exact-tick args: the microsecond ts is lossy, ticks are not.
        os << ", \"args\": {\"tick\": " << ev.ts;
        if (ev.ph == 'X')
            os << ", \"durTicks\": " << ev.dur;
        if (ev.ph == 'e' && ev.dur)
            os << ", \"deadlineTick\": " << ev.dur;
        if (ev.flow >= 0)
            os << ", \"flow\": " << ev.flow;
        if (ev.frame >= 0)
            os << ", \"frame\": " << ev.frame;
        if (ev.lane >= 0)
            os << ", \"lane\": " << ev.lane;
        if (ev.ph == 'C')
            os << ", \"value\": " << doubleString(ev.value);
        else if (ev.value > 0)
            os << ", \"bytes\": " << doubleString(ev.value);
        os << "}}";
    });

    os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\n";
    os << "  \"traceSchemaVersion\": " << kTraceSchemaVersion << ",\n";
    for (const auto &[k, v] : provenanceFields())
        os << "  \"" << jsonEscape(k) << "\": \"" << jsonEscape(v)
           << "\",\n";
    for (const auto &[k, v] : meta)
        os << "  \"" << jsonEscape(k) << "\": \"" << jsonEscape(v)
           << "\",\n";
    os << "  \"categories\": \"" << traceCatsToString(_categories)
       << "\",\n";
    os << "  \"droppedEvents\": " << _dropped << "\n}\n}\n";
}

} // namespace vip
