/**
 * @file
 * Windowed time-series telemetry configuration (--ts).
 *
 * Kept in its own tiny header (like prof_config.hh) so SocConfig can
 * embed it without pulling the time-series implementation into every
 * translation unit.
 */

#ifndef VIP_OBS_TS_CONFIG_HH
#define VIP_OBS_TS_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vip
{

/**
 * Arms the windowed time-series plane (--ts[=<glob>]): stats matching
 * @ref glob are sampled from the StatRegistry at the MetricsSampler
 * cadence (cfg.metrics.intervalMs, whether or not a metrics CSV is
 * armed) into bounded per-stat ring buffers with stride-doubling
 * decimation, and a steady-state detector runs a sliding-window
 * relative-spread test over the @ref steadyStats series.
 *
 * Everything here is purely observational: the plane samples from the
 * event loop's pre-service hook (no scheduled events, no randomness,
 * nothing in any stateDigest()), so arming it leaves audit digest
 * streams bit-identical — and like --prof it is deliberately excluded
 * from checkpoint *identity*; arming, however, must match across a
 * save/restore pair (the series rows resume from the snapshot).
 */
struct TsConfig
{
    /** --ts given; the master switch. */
    bool armed = false;

    /**
     * Stat-selection glob(s) over StatRegistry paths; '*' matches any
     * run of characters, ',' separates alternatives
     * ("flow.*,sim.eventq.live").  Default: every registered stat.
     */
    std::string glob = "*";

    /** series.json destination; empty = in-memory only. */
    std::string out;

    /**
     * Series the steady-state detector watches (globs).  Stats with
     * Tolerance::Exact that rise monotonically over the detector
     * window are treated as counters and judged on their cumulative
     * mean rate (value / elapsed time, which converges once the boot
     * transient has been amortized and is immune to the frame-count
     * quantization a short windowed rate suffers); everything else is
     * judged on its raw value.
     */
    std::vector<std::string> steadyStats{"flow.*.completed",
                                         "sim.eventq.live"};

    /**
     * Relative-spread ceiling: a tracked series is steady when
     * (max - min) <= threshold% of |mean| over the sliding window
     * (counters additionally need a positive mean rate).  The run is
     * steady at the first detector step where every tracked series
     * passes at once.  The defaults detect W4 on all five paper
     * configurations between ~150 and ~270 simulated ms.
     */
    double steadyThresholdPct = 50.0;

    /** Sliding-window length, in detector samples. */
    std::uint32_t steadyWindow = 16;

    /** Detector cadence: one detector sample per N series samples. */
    std::uint32_t steadyEvery = 4;

    /** Simulated ms before the detector starts watching at all. */
    double steadyWarmupMs = 50.0;

    /**
     * --checkpoint-on-steady: when non-empty, detection arms a
     * one-shot checkpoint written to this path at the first quiescent
     * point at or after the detected steady tick — the warm-start
     * seed snapshot for fanned-out sweeps.
     */
    std::string checkpointOnSteady;

    bool enabled() const { return armed; }
};

} // namespace vip

#endif // VIP_OBS_TS_CONFIG_HH
