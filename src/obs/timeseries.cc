#include "obs/timeseries.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "obs/provenance.hh"
#include "sim/logging.hh"
#include "sim/snapshot.hh"

namespace vip
{

namespace
{

/** Single-pattern glob: '*' = any run, '?' = one character. */
bool
matchOne(const char *p, const char *s)
{
    for (; *p; ++p, ++s) {
        if (*p == '*') {
            while (*(p + 1) == '*')
                ++p;
            for (const char *t = s;; ++t) {
                if (matchOne(p + 1, t))
                    return true;
                if (!*t)
                    return false;
            }
        }
        if (!*s || (*p != '?' && *p != *s))
            return false;
    }
    return !*s;
}

/** Deterministic number formatting shared by every array in the
 *  JSON output (shortest round-trip-safe form is overkill here; nine
 *  significant digits keep large files readable and stable). */
std::string
num(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

void
writeArray(std::ostream &os, const std::vector<double> &v)
{
    os << "[";
    for (std::size_t i = 0; i < v.size(); ++i)
        os << (i ? "," : "") << num(v[i]);
    os << "]";
}

} // namespace

bool
TimeSeries::globMatch(const std::string &pat, const std::string &path)
{
    std::size_t start = 0;
    while (start <= pat.size()) {
        std::size_t comma = pat.find(',', start);
        std::string one = pat.substr(
            start, comma == std::string::npos ? comma : comma - start);
        if (!one.empty() && matchOne(one.c_str(), path.c_str()))
            return true;
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return false;
}

TimeSeries::TimeSeries(const TsConfig &cfg, double intervalMs,
                       const StatRegistry &reg)
    : _cfg(cfg)
{
    if (!(intervalMs > 0.0))
        fatal("time series: sampling interval must be positive, got ",
              intervalMs, " ms");
    _interval = fromMs(intervalMs);
    _nextBoundary = _interval;

    for (const StatDef &d : reg.defs()) {
        if (!globMatch(_cfg.glob, d.path))
            continue;
        _sel.push_back({d.path, d.unit, d.tol, d.get});
    }
    if (_sel.empty())
        fatal("--ts glob '", _cfg.glob,
              "' selects no registered stat");

    for (std::size_t i = 0; i < _sel.size(); ++i) {
        for (const std::string &g : _cfg.steadyStats) {
            if (globMatch(g, _sel[i].path)) {
                _tracks.push_back({i, {}, {}});
                _trackedPaths.push_back(_sel[i].path);
                break;
            }
        }
    }
    if (_cfg.steadyWindow < 2)
        fatal("time series: steadyWindow must be at least 2");
    if (_cfg.steadyEvery < 1)
        fatal("time series: steadyEvery must be at least 1");
}

void
TimeSeries::catchUp(Tick next)
{
    while (_nextBoundary <= next) {
        sampleAt(_nextBoundary);
        _nextBoundary += _interval;
    }
}

void
TimeSeries::sampleAt(Tick t)
{
    ++_samples;

    // The detector sees every boundary sample regardless of what the
    // storage ring later keeps: its verdict must not depend on
    // decimation history.
    if (!_tracks.empty() && !_steady &&
        t >= fromMs(_cfg.steadyWarmupMs) &&
        _samples % _cfg.steadyEvery == 0)
        detectStep(t);

    if (_skip > 0) {
        --_skip;
        return;
    }
    if (_rows.size() >= kRowCap) {
        // Stride-doubling decimation (the profiler's queue-timeline
        // trick): halve the stored history, double the keep stride.
        std::size_t kept = 0;
        for (std::size_t i = 0; i < _rows.size(); i += 2) {
            if (kept != i) // self-move would empty row 0
                _rows[kept] = std::move(_rows[i]);
            ++kept;
        }
        _rows.resize(kept);
        _stride *= 2;
    }
    Row r;
    r.tick = t;
    r.vals.reserve(_sel.size());
    for (const Sel &s : _sel)
        r.vals.push_back(s.get());
    _rows.push_back(std::move(r));
    _skip = _stride - 1;
}

void
TimeSeries::detectStep(Tick t)
{
    const std::size_t W = _cfg.steadyWindow;
    bool allSteady = true;
    for (Track &tr : _tracks) {
        const Sel &s = _sel[tr.sel];
        tr.vals.push_back(s.get());
        if (tr.vals.size() > W + 1)
            tr.vals.pop_front();

        bool pass = false;
        if (tr.vals.size() == W + 1) {
            // Counter: an exactly-compared stat that never decreased
            // over the window.  Judged on its cumulative mean rate
            // (value / elapsed time): a short windowed rate is
            // dominated by frame-count quantization for slow flows,
            // while the cumulative rate converges exactly when the
            // boot transient has been amortized — which is what
            // "steady" means here.  It must be positive: an idle
            // all-zero counter is "dead", not "steady".
            bool counter = s.tol == Tolerance::Exact;
            for (std::size_t i = 1; counter && i < tr.vals.size();
                 ++i)
                counter = tr.vals[i] >= tr.vals[i - 1];
            const double m =
                counter ? tr.vals.back() / toSec(t)
                        : tr.vals.back();
            tr.metric.push_back(m);
            if (tr.metric.size() > W)
                tr.metric.pop_front();
            if (tr.metric.size() == W) {
                double lo = tr.metric[0], hi = tr.metric[0],
                       sum = 0.0;
                for (double v : tr.metric) {
                    lo = std::min(lo, v);
                    hi = std::max(hi, v);
                    sum += v;
                }
                const double mean =
                    sum / static_cast<double>(tr.metric.size());
                const double denom = std::max(std::fabs(mean), 1e-9);
                pass = (hi - lo) <=
                       _cfg.steadyThresholdPct / 100.0 * denom;
                if (counter && !(mean > 0.0))
                    pass = false;
            }
        }
        allSteady = allSteady && pass;
    }
    if (allSteady) {
        _steady = true;
        _steadyTick = t;
    }
}

void
TimeSeries::writeJson(
    std::ostream &os,
    const std::vector<std::pair<std::string, std::string>> &meta) const
{
    os << "{\n"
       << "  \"kind\": \"vip-series\",\n"
       << "  \"schemaVersion\": " << kSchemaVersion << ",\n";
    os << "  \"provenance\": {";
    bool first = true;
    for (const auto &[k, v] : provenanceFields()) {
        os << (first ? "" : ", ") << '"' << k << "\": \"" << v
           << '"';
        first = false;
    }
    os << "},\n";
    os << "  \"run\": {";
    first = true;
    for (const auto &[k, v] : meta) {
        os << (first ? "" : ", ") << '"' << k << "\": \"" << v
           << '"';
        first = false;
    }
    os << "},\n";
    os << "  \"interval_ms\": " << num(toMs(_interval)) << ",\n"
       << "  \"glob\": \"" << _cfg.glob << "\",\n"
       << "  \"samples\": " << _samples << ",\n"
       << "  \"stride\": " << _stride << ",\n"
       << "  \"rows\": " << _rows.size() << ",\n";

    os << "  \"steady\": {\"detected\": "
       << (_steady ? "true" : "false")
       << ", \"tick_ms\": " << num(steadyTickMs())
       << ", \"threshold_pct\": " << num(_cfg.steadyThresholdPct)
       << ", \"window\": " << _cfg.steadyWindow
       << ", \"every\": " << _cfg.steadyEvery
       << ", \"warmup_ms\": " << num(_cfg.steadyWarmupMs)
       << ", \"tracked\": [";
    for (std::size_t i = 0; i < _trackedPaths.size(); ++i)
        os << (i ? ", " : "") << '"' << _trackedPaths[i] << '"';
    os << "]},\n";

    std::vector<double> ticks;
    ticks.reserve(_rows.size());
    for (const Row &r : _rows)
        ticks.push_back(toMs(r.tick));
    os << "  \"ticks_ms\": ";
    writeArray(os, ticks);
    os << ",\n";

    // Derived series are computed here, from the stored (already
    // decimated) rows — the run itself never pays for them.
    constexpr std::size_t kWin = 8;    // windowed min/max span, rows
    constexpr double kEwmaAlpha = 0.2; // EWMA smoothing factor
    os << "  \"series\": [\n";
    for (std::size_t si = 0; si < _sel.size(); ++si) {
        const Sel &s = _sel[si];
        std::vector<double> vals;
        vals.reserve(_rows.size());
        for (const Row &r : _rows)
            vals.push_back(r.vals[si]);

        bool counter = s.tol == Tolerance::Exact && !vals.empty();
        for (std::size_t i = 1; counter && i < vals.size(); ++i)
            counter = vals[i] >= vals[i - 1];
        counter = counter && !vals.empty() &&
                  vals.back() > vals.front();

        os << "    {\"path\": \"" << s.path << "\", \"unit\": \""
           << s.unit << "\", \"kind\": \""
           << (counter ? "counter" : "gauge") << "\",\n"
           << "     \"values\": ";
        writeArray(os, vals);
        if (counter) {
            std::vector<double> rate(vals.size(), 0.0);
            for (std::size_t i = 1; i < vals.size(); ++i) {
                const double dtSec =
                    (ticks[i] - ticks[i - 1]) * 1e-3;
                rate[i] = dtSec > 0.0
                              ? (vals[i] - vals[i - 1]) / dtSec
                              : 0.0;
            }
            os << ",\n     \"rate_per_s\": ";
            writeArray(os, rate);
        }
        std::vector<double> ewma(vals.size(), 0.0);
        std::vector<double> wmin(vals.size(), 0.0);
        std::vector<double> wmax(vals.size(), 0.0);
        for (std::size_t i = 0; i < vals.size(); ++i) {
            ewma[i] = i == 0 ? vals[0]
                             : kEwmaAlpha * vals[i] +
                                   (1.0 - kEwmaAlpha) * ewma[i - 1];
            const std::size_t lo = i + 1 >= kWin ? i + 1 - kWin : 0;
            double mn = vals[lo], mx = vals[lo];
            for (std::size_t j = lo; j <= i; ++j) {
                mn = std::min(mn, vals[j]);
                mx = std::max(mx, vals[j]);
            }
            wmin[i] = mn;
            wmax[i] = mx;
        }
        os << ",\n     \"ewma\": ";
        writeArray(os, ewma);
        os << ",\n     \"win_min\": ";
        writeArray(os, wmin);
        os << ",\n     \"win_max\": ";
        writeArray(os, wmax);
        os << "}" << (si + 1 < _sel.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";
}

void
TimeSeries::saveState(SnapshotWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(_sel.size()));
    for (const Sel &s : _sel)
        w.str(s.path);
    w.tick(_nextBoundary);
    w.u64(_samples);
    w.u64(_stride);
    w.u64(_skip);
    w.u64(_rows.size());
    for (const Row &r : _rows) {
        w.tick(r.tick);
        for (double v : r.vals)
            w.d(v);
    }
    w.b(_steady);
    w.tick(_steadyTick);
    w.u32(static_cast<std::uint32_t>(_tracks.size()));
    for (const Track &t : _tracks) {
        w.u32(static_cast<std::uint32_t>(t.sel));
        w.u32(static_cast<std::uint32_t>(t.vals.size()));
        for (double v : t.vals)
            w.d(v);
        w.u32(static_cast<std::uint32_t>(t.metric.size()));
        for (double v : t.metric)
            w.d(v);
    }
}

void
TimeSeries::loadState(SnapshotReader &r)
{
    std::uint32_t nSel = r.u32();
    if (nSel != _sel.size())
        fatal("restore: snapshot time series selects ", nSel,
              " stats, this run selects ", _sel.size(),
              " (--ts glob mismatch)");
    for (const Sel &s : _sel) {
        std::string path = r.str();
        if (path != s.path)
            fatal("restore: snapshot time-series stat '", path,
                  "' != this run's '", s.path,
                  "' (--ts glob mismatch)");
    }
    _nextBoundary = r.tick();
    _samples = r.u64();
    _stride = r.u64();
    _skip = r.u64();
    std::uint64_t nRows = r.u64();
    _rows.clear();
    _rows.reserve(nRows);
    for (std::uint64_t i = 0; i < nRows; ++i) {
        Row row;
        row.tick = r.tick();
        row.vals.reserve(_sel.size());
        for (std::size_t j = 0; j < _sel.size(); ++j)
            row.vals.push_back(r.d());
        _rows.push_back(std::move(row));
    }
    _steady = r.b();
    _steadyTick = r.tick();
    std::uint32_t nTracks = r.u32();
    if (nTracks != _tracks.size())
        fatal("restore: snapshot tracks ", nTracks,
              " steady-state series, this run tracks ",
              _tracks.size(), " (steadyStats mismatch)");
    for (Track &t : _tracks) {
        std::uint32_t sel = r.u32();
        if (sel != t.sel)
            fatal("restore: steady-state track index mismatch");
        t.vals.clear();
        std::uint32_t nv = r.u32();
        for (std::uint32_t i = 0; i < nv; ++i)
            t.vals.push_back(r.d());
        t.metric.clear();
        std::uint32_t nm = r.u32();
        for (std::uint32_t i = 0; i < nm; ++i)
            t.metric.push_back(r.d());
    }
}

} // namespace vip
