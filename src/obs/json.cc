#include "obs/json.hh"

#include <cctype>
#include <istream>
#include <iterator>

#include "sim/logging.hh"

namespace vip
{
namespace json
{

namespace
{

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : _s(text) {}

    JsonValue
    parseDocument()
    {
        JsonValue v = value();
        skipWs();
        if (_pos != _s.size())
            fail("trailing characters after JSON document");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const std::string &why)
    {
        fatal("JSON parse error at offset ", _pos, ": ", why);
    }

    void
    skipWs()
    {
        while (_pos < _s.size()
               && std::isspace(static_cast<unsigned char>(_s[_pos])))
            ++_pos;
    }

    char
    peek()
    {
        skipWs();
        if (_pos >= _s.size())
            fail("unexpected end of input");
        return _s[_pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "', got '" + _s[_pos]
                 + "'");
        ++_pos;
    }

    JsonValue
    value()
    {
        switch (peek()) {
          case '{': return object();
          case '[': return array();
          case '"': return stringValue();
          case 't': return literal("true", JsonValue::Kind::Bool, true);
          case 'f':
            return literal("false", JsonValue::Kind::Bool, false);
          case 'n': return literal("null", JsonValue::Kind::Null, false);
          default: return number();
        }
    }

    JsonValue
    literal(const char *word, JsonValue::Kind kind, bool b)
    {
        for (const char *p = word; *p; ++p, ++_pos)
            if (_pos >= _s.size() || _s[_pos] != *p)
                fail(std::string("bad literal, expected ") + word);
        JsonValue v;
        v.kind = kind;
        v.b = b;
        return v;
    }

    JsonValue
    number()
    {
        std::size_t start = _pos;
        while (_pos < _s.size()
               && (std::isdigit(static_cast<unsigned char>(_s[_pos]))
                   || _s[_pos] == '-' || _s[_pos] == '+'
                   || _s[_pos] == '.' || _s[_pos] == 'e'
                   || _s[_pos] == 'E'))
            ++_pos;
        if (_pos == start)
            fail("expected a number");
        JsonValue v;
        v.kind = JsonValue::Kind::Number;
        try {
            v.num = std::stod(_s.substr(start, _pos - start));
        } catch (const std::exception &) {
            fail("unparseable number '" + _s.substr(start, _pos - start)
                 + "'");
        }
        return v;
    }

    JsonValue
    stringValue()
    {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.str = rawString();
        return v;
    }

    std::string
    rawString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (_pos >= _s.size())
                fail("unterminated string");
            char c = _s[_pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (_pos >= _s.size())
                fail("dangling escape");
            char e = _s[_pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (_pos + 4 > _s.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = _s[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= unsigned(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= unsigned(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= unsigned(h - 'A' + 10);
                    else
                        fail("bad \\u escape digit");
                }
                // ASCII only (our writers never emit more).
                out += static_cast<char>(code & 0x7f);
                break;
              }
              default: fail("unknown escape");
            }
        }
    }

    JsonValue
    object()
    {
        expect('{');
        JsonValue v;
        v.kind = JsonValue::Kind::Object;
        if (peek() == '}') {
            ++_pos;
            return v;
        }
        while (true) {
            std::string key = rawString();
            expect(':');
            v.obj.emplace_back(std::move(key), value());
            if (peek() == ',') {
                ++_pos;
                skipWs();
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    array()
    {
        expect('[');
        JsonValue v;
        v.kind = JsonValue::Kind::Array;
        if (peek() == ']') {
            ++_pos;
            return v;
        }
        while (true) {
            v.arr.push_back(value());
            if (peek() == ',') {
                ++_pos;
                continue;
            }
            expect(']');
            return v;
        }
    }

    const std::string &_s;
    std::size_t _pos = 0;
};

} // namespace

JsonValue
parse(const std::string &text)
{
    return JsonParser(text).parseDocument();
}

JsonValue
parse(std::istream &is)
{
    std::string text(std::istreambuf_iterator<char>(is), {});
    return parse(text);
}

std::string
strField(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v && v->kind == JsonValue::Kind::String ? v->str : "";
}

double
numField(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v && v->kind == JsonValue::Kind::Number ? v->num : 0.0;
}

std::string
quoted(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out += c; break;
        }
    }
    out += '"';
    return out;
}

} // namespace json
} // namespace vip
