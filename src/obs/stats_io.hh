/**
 * @file
 * Reading and comparing stats.json files (the library behind
 * vip_stats_diff and the CI perf-regression gate).
 *
 * A comparison walks the union of the two files' stat paths and
 * applies each stat's tolerance rule (recorded in the baseline, or
 * overridden on the command line):
 *
 *  - "exact":     any difference is a violation,
 *  - "pct:<b>":   |a-b| must stay within b% of the larger magnitude
 *                 (with a small absolute floor so near-zero timing
 *                 values do not fail on noise).
 *
 * Missing or extra stats and schema/run-context mismatches are
 * violations too: a renamed counter must show up in review, not
 * silently stop being compared.
 */

#ifndef VIP_OBS_STATS_IO_HH
#define VIP_OBS_STATS_IO_HH

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace vip
{

/** One stat parsed back from stats.json. */
struct StatEntry
{
    std::string path;
    double value = 0.0;
    std::string unit;
    std::string tol; ///< "exact" or "pct:<band>"
    std::string desc;
};

/** A whole parsed stats.json. */
struct StatsFile
{
    int schemaVersion = 0;
    std::map<std::string, std::string> provenance;
    std::map<std::string, std::string> run; ///< workload/config/seed
    std::vector<StatEntry> stats;           ///< file order

    const StatEntry *find(const std::string &path) const;
};

/**
 * Parse a stats.json document.  Throws SimFatal on malformed JSON or
 * a document that is not kind "vip-stats".
 */
StatsFile parseStatsJson(std::istream &is);

/**
 * Tolerance overrides keyed by exact path, or by prefix when the key
 * ends in '*' ("dram.*" matches every DRAM stat).  The most specific
 * (longest) match wins.  Values use the same syntax as the files:
 * "exact" or "pct:<band>".
 */
using ToleranceOverrides = std::map<std::string, std::string>;

/** Result of comparing candidate against baseline. */
struct StatsComparison
{
    bool ok = true;
    std::size_t compared = 0;
    /** Human-readable violations, each naming the offending path. */
    std::vector<std::string> violations;
};

/**
 * Compare @p candidate against @p baseline under the baseline's
 * per-stat tolerance rules (plus @p overrides).  Run context
 * (workload/config/seed/seconds) must match; provenance (git hash,
 * compiler) is informational and never compared.
 */
StatsComparison compareStats(const StatsFile &baseline,
                             const StatsFile &candidate,
                             const ToleranceOverrides &overrides = {});

/**
 * Apply a tolerance rule to one pair of values.  Exposed for tests.
 * @p rule is "exact" or "pct:<band>"; unknown rules compare exact.
 */
bool valuesWithinTolerance(const std::string &rule, double baseline,
                           double candidate);

} // namespace vip

#endif // VIP_OBS_STATS_IO_HH
