/**
 * @file
 * Minimal recursive-descent JSON parser — just enough DOM for the
 * observability file formats (trace_event files, stats.json, crash
 * bundles), with no external dependencies.  Extracted from
 * trace_check.cc so every tool parses the same dialect.
 */

#ifndef VIP_OBS_JSON_HH
#define VIP_OBS_JSON_HH

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace vip
{
namespace json
{

/** One parsed JSON value; object members keep file order. */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<JsonValue> arr;
    std::vector<std::pair<std::string, JsonValue>> obj;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : obj)
            if (k == key)
                return &v;
        return nullptr;
    }
};

/** Parse a complete JSON document.  Throws SimFatal on bad input. */
JsonValue parse(const std::string &text);

/** Parse a complete JSON document from a stream (reads to EOF). */
JsonValue parse(std::istream &is);

/** Object member as string ("" when missing or not a string). */
std::string strField(const JsonValue &obj, const char *key);

/** Object member as number (0.0 when missing or not a number). */
double numField(const JsonValue &obj, const char *key);

/** Escape a string for embedding in a JSON document (adds quotes). */
std::string quoted(const std::string &s);

} // namespace json
} // namespace vip

#endif // VIP_OBS_JSON_HH
