/**
 * @file
 * Windowed time-series telemetry over the StatRegistry (--ts), with
 * steady-state detection.
 *
 * Every surface the simulator had was either an end-of-run scalar
 * (the stats registry) or an unbounded raw dump (metrics CSV, trace
 * ring).  This plane sits between them: stats selected by glob are
 * sampled at the metrics cadence into one bounded row ring covering
 * the whole run — at capacity every second row is dropped and the
 * keep-stride doubles (the profiler's queue-timeline trick), so
 * memory is O(capacity) regardless of run length while the series
 * still spans start to finish.  Derived views (rates from counters,
 * EWMA, windowed min/max) are computed at dump time from the stored
 * rows, never during the run.
 *
 * Digest neutrality is by construction, one step stronger than the
 * MetricsSampler: sampling happens from the event loop's pre-service
 * hook, so the plane schedules no events, consumes no randomness and
 * contributes nothing to any stateDigest() — an armed run's digest
 * stream is bit-identical to a bare one.
 *
 * The steady-state detector answers "has this run left the boot
 * transient yet?": every steadyEvery-th sample it pushes each tracked
 * series' value into a sliding window and declares steady at the
 * first step where every window's relative spread
 * ((max - min) / |mean|) is under the threshold — counters (Exact
 * tolerance, monotone over the window) are judged on their windowed
 * rate, which must also be positive, so an idle all-zero counter can
 * never vote steady.  The verdict latches; sim.steady.tick exports it
 * through stats and metrics, and --checkpoint-on-steady turns it into
 * the warm-start seed snapshot.
 *
 * Snapshot-safe: rows, decimation state and detector windows
 * serialize into the "timeseries" checkpoint section, so a restored
 * run's series.json is byte-identical to an uninterrupted run's —
 * no duplicated, missing or rewound rows (the in-memory analog of
 * MetricsSampler's resume() protocol).
 */

#ifndef VIP_OBS_TIMESERIES_HH
#define VIP_OBS_TIMESERIES_HH

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/stat_registry.hh"
#include "obs/ts_config.hh"
#include "sim/types.hh"

namespace vip
{

class SnapshotWriter;
class SnapshotReader;

class TimeSeries
{
  public:
    /** Version stamped as "schemaVersion" into every series.json. */
    static constexpr int kSchemaVersion = 1;

    /** Row-ring capacity; at capacity the keep-stride doubles. */
    static constexpr std::size_t kRowCap = 512;

    /**
     * Select every stat of @p reg matching cfg.glob (must select at
     * least one; an empty selection is a configuration error) and
     * resolve the detector's tracked set from cfg.steadyStats.
     * @p intervalMs is the sampling cadence in simulated ms (the
     * MetricsSampler cadence, armed or not).
     */
    TimeSeries(const TsConfig &cfg, double intervalMs,
               const StatRegistry &reg);

    /**
     * Pre-service hook entry: called with the tick of the event about
     * to be serviced; emits one sample per interval boundary passed
     * since the last call.  The fast path (no boundary crossed) is a
     * single comparison.
     */
    void
    observe(Tick next)
    {
        if (next < _nextBoundary)
            return;
        catchUp(next);
    }

    /** Flush boundaries up to the final tick (end of run). */
    void finish(Tick end) { catchUp(end); }

    /** @{ steady-state verdict (latched). */
    bool steadyDetected() const { return _steady; }
    Tick steadyTick() const { return _steadyTick; }
    /** Detection tick in ms, or -1 while undetected (the stats /
     *  metrics representation). */
    double
    steadyTickMs() const
    {
        return _steady ? toMs(_steadyTick) : -1.0;
    }
    /** @} */

    /** @{ introspection (tests, stats export). */
    std::size_t selected() const { return _sel.size(); }
    std::size_t rows() const { return _rows.size(); }
    std::uint64_t samplesSeen() const { return _samples; }
    std::uint64_t stride() const { return _stride; }
    const std::vector<std::string> &trackedPaths() const
    {
        return _trackedPaths;
    }
    /** @} */

    /**
     * Write the self-describing series.json: schemaVersion, build
     * provenance, run context (@p meta), the decimated tick axis,
     * and per-stat raw values plus derived series (rate for
     * counters, EWMA, windowed min/max).  Contains no wall-clock
     * content, so two identical runs produce identical bytes.
     */
    void writeJson(
        std::ostream &os,
        const std::vector<std::pair<std::string, std::string>> &meta
        = {}) const;

    /** @{ checkpoint/restore ("timeseries" snapshot section). */
    void saveState(SnapshotWriter &w) const;
    void loadState(SnapshotReader &r);
    /** @} */

    /**
     * Glob match: '*' matches any run of characters, '?' one
     * character, ',' separates alternatives.  Exposed for tests.
     */
    static bool globMatch(const std::string &pat,
                          const std::string &path);

  private:
    /** One selected stat: identity + how to read it, copied from the
     *  registry at construction. */
    struct Sel
    {
        std::string path;
        std::string unit;
        Tolerance tol;
        std::function<double()> get;
    };

    /** One stored sample row: tick + every selected stat's value. */
    struct Row
    {
        Tick tick;
        std::vector<double> vals;
    };

    /** Sliding-window state for one detector-tracked series. */
    struct Track
    {
        std::size_t sel;           ///< index into _sel
        std::deque<double> vals;   ///< last window+1 raw samples
        std::deque<double> metric; ///< last window judged values
    };

    void catchUp(Tick next);
    void sampleAt(Tick t);
    void detectStep(Tick t);

    TsConfig _cfg;
    Tick _interval;
    Tick _nextBoundary;

    std::vector<Sel> _sel;
    std::vector<Row> _rows;
    std::uint64_t _samples = 0; ///< boundaries sampled (pre-decimation)
    std::uint64_t _stride = 1;  ///< keep every _stride-th sample
    std::uint64_t _skip = 0;    ///< samples to drop before next keep

    std::vector<Track> _tracks;
    std::vector<std::string> _trackedPaths;
    bool _steady = false;
    Tick _steadyTick = 0;
};

} // namespace vip

#endif // VIP_OBS_TIMESERIES_HH
