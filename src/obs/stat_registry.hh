/**
 * @file
 * Hierarchical, self-describing statistics registry.
 *
 * Every SimObject (and the Simulation itself) registers named stats
 * under dotted paths — `ip.vd.busy_ms`, `dram.ch0.bursts`,
 * `sa.bytes_forwarded`, `flow.2.frames_shed` — each with a unit, a
 * description, and a tolerance class that tells the cross-run
 * comparator (`vip_stats_diff`) how the value may legally move
 * between runs:
 *
 *  - Tolerance::Exact:   conservation counters (bytes, frames,
 *                        events).  Any difference is a violation.
 *  - Tolerance::Percent: timing/derived values.  Allowed to move
 *                        within a percentage band.
 *
 * Stats are registered as getter closures over live component state,
 * so the registry never copies or samples anything during the run:
 * it is purely observational (no events, no randomness, no digest
 * contribution) and reading it happens only at dump time.  The one
 * exception is CounterHandle, a registry-owned scalar slot for call
 * sites that have no natural home for a counter field.
 *
 * writeJson() emits the schemaVersion'd, provenance-stamped
 * `stats.json` consumed by `vip_stats_diff` and the flight recorder.
 */

#ifndef VIP_OBS_STAT_REGISTRY_HH
#define VIP_OBS_STAT_REGISTRY_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

namespace vip
{

namespace stats
{
class Scalar;
class TimeWeighted;
class Accumulator;
} // namespace stats

class LogHistogram;

/** How vip_stats_diff may let a stat move between runs. */
enum class Tolerance
{
    Exact,   ///< must match bit-for-bit (conservation counters)
    Percent, ///< may move within a percentage band (timing)
};

/**
 * A registry-owned counter slot.  Components that cannot host a
 * stats:: member (free functions, short-lived helpers) increment
 * through the handle; the registry keeps the storage alive.
 */
class CounterHandle
{
  public:
    CounterHandle() = default;

    CounterHandle &
    operator+=(double v)
    {
        if (_slot)
            *_slot += v;
        return *this;
    }

    CounterHandle &
    operator++()
    {
        return *this += 1.0;
    }

    void
    set(double v)
    {
        if (_slot)
            *_slot = v;
    }

    double value() const { return _slot ? *_slot : 0.0; }
    bool valid() const { return _slot != nullptr; }

  private:
    friend class StatRegistry;
    explicit CounterHandle(double *slot) : _slot(slot) {}
    double *_slot = nullptr;
};

/** One registered stat: identity, documentation, and how to read it. */
struct StatDef
{
    std::string path; ///< dotted hierarchical name
    std::string desc;
    std::string unit; ///< "", "bytes", "ms", "frames", ...
    Tolerance tol = Tolerance::Exact;
    double tolPct = 0.0; ///< band for Tolerance::Percent
    std::function<double()> get;
};

class StatRegistry
{
  public:
    /** Default percentage band for addTiming()/timing adders. */
    static constexpr double kDefaultTimingBandPct = 5.0;

    /** Version stamped as "schemaVersion" into every stats.json. */
    static constexpr int kStatsSchemaVersion = 1;

    StatRegistry() = default;
    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    /**
     * Register a stat under @p path.  Duplicate paths panic: two
     * components silently shadowing each other's counters is exactly
     * the scattering this registry exists to end.
     */
    void add(StatDef def);

    /** Register an exactly-compared getter (conservation counters). */
    void
    addExact(std::string path, std::string desc, std::string unit,
             std::function<double()> get)
    {
        add({std::move(path), std::move(desc), std::move(unit),
             Tolerance::Exact, 0.0, std::move(get)});
    }

    /** Register a percentage-band getter (timing/derived values). */
    void
    addTiming(std::string path, std::string desc, std::string unit,
              std::function<double()> get,
              double bandPct = kDefaultTimingBandPct)
    {
        add({std::move(path), std::move(desc), std::move(unit),
             Tolerance::Percent, bandPct, std::move(get)});
    }

    /** @{ Adapters for the src/stats primitives. */
    void addScalar(std::string path, std::string unit,
                   const stats::Scalar &s);
    void addTimeWeighted(std::string path, std::string unit,
                         const stats::TimeWeighted &s);
    /** count (exact) + mean/min/max (banded) under path.*. */
    void addAccumulator(std::string path, std::string unit,
                        const stats::Accumulator &s);
    /** count (exact) + mean/p50/p95/p99/max in ms under path.*. */
    void addLogHistogramMs(std::string path, std::string desc,
                           const LogHistogram &h);
    /** @} */

    /** Allocate a registry-owned counter and register it. */
    CounterHandle counter(std::string path, std::string desc,
                          std::string unit);

    bool has(const std::string &path) const;
    std::size_t size() const { return _defs.size(); }
    const std::vector<StatDef> &defs() const { return _defs; }

    /** Evaluate every stat now: (path, value), sorted by path. */
    std::vector<std::pair<std::string, double>> snapshot() const;

    /**
     * Write the self-describing stats.json: schemaVersion, build
     * provenance, run context (@p meta: workload, config, seed,
     * seconds), then every stat sorted by path with value, unit,
     * description and tolerance rule.
     */
    void writeJson(
        std::ostream &os,
        const std::vector<std::pair<std::string, std::string>> &meta
        = {}) const;

  private:
    std::vector<StatDef> _defs;
    std::unordered_set<std::string> _paths;
    /** CounterHandle storage; deque keeps addresses stable. */
    std::deque<double> _slots;
};

} // namespace vip

#endif // VIP_OBS_STAT_REGISTRY_HH
