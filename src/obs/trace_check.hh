/**
 * @file
 * Trace-file validation and analysis (the library behind vip_trace).
 *
 * Parses Chrome trace_event JSON back into memory, validates span
 * nesting and async pairing, and reconstructs per-frame lifecycles
 * from the exact-tick args every event carries — so a frame's
 * end-to-end latency can be re-derived from spans alone and checked
 * against RunStats.
 */

#ifndef VIP_OBS_TRACE_CHECK_HH
#define VIP_OBS_TRACE_CHECK_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace vip
{

/** One parsed trace event (string/number args flattened). */
struct TraceEventView
{
    std::string ph;
    std::string name;
    std::string cat;
    std::string id; ///< async id (hex string), empty otherwise
    long long tid = 0;
    double ts = 0.0;  ///< microseconds
    double dur = 0.0; ///< microseconds (X only)
    std::map<std::string, double> numArgs;
    std::map<std::string, std::string> strArgs;

    /** Exact-tick arg lookup (0 when missing). */
    std::uint64_t
    tickArg(const std::string &key) const
    {
        auto it = numArgs.find(key);
        return it == numArgs.end()
                   ? 0
                   : static_cast<std::uint64_t>(it->second);
    }
};

/** A whole parsed trace file. */
struct TraceFile
{
    std::vector<TraceEventView> events; ///< non-metadata events
    std::map<long long, std::string> threadNames;
    std::map<std::string, std::string> otherData;
    std::uint64_t droppedEvents = 0;
};

/**
 * Parse trace_event JSON.  Throws SimFatal on malformed JSON or a
 * structurally invalid trace container.
 */
TraceFile parseTraceJson(std::istream &is);

/** Result of structural validation. */
struct TraceCheckResult
{
    bool ok = true;
    std::vector<std::string> errors;
    std::size_t events = 0;
    std::size_t spans = 0;        ///< B/E pairs + X events
    std::size_t openAtEof = 0;    ///< B spans never closed (allowed)
    std::size_t asyncOpen = 0;    ///< async ids begun, never ended
    std::size_t instants = 0;
    std::size_t counters = 0;
};

/**
 * Validate span nesting (E matches a B on the same track, times
 * monotone within a span), X durations, and async b/e pairing.
 * Unmatched events are errors only when the trace reports zero
 * dropped (ring-evicted) events.
 */
TraceCheckResult checkTrace(const TraceFile &f);

/** One frame's lifecycle re-derived from async flow events. */
struct FrameLifecycle
{
    std::string asyncId;
    std::int64_t flow = -1;
    std::int64_t frame = -1;
    std::uint64_t genTick = 0;
    std::uint64_t startTick = 0; ///< 0 if never started
    std::uint64_t endTick = 0;
    std::uint64_t deadlineTick = 0;
    bool complete = false; ///< both 'b' and 'e' seen
    /** Stage instants ('n'), in timestamp order: (tick, name). */
    std::vector<std::pair<std::uint64_t, std::string>> stageMarks;

    /** End-to-end latency as RunStats computes it. */
    std::uint64_t
    endToEndTicks() const
    {
        std::uint64_t ref = std::max(genTick, startTick);
        return endTick > ref ? endTick - ref : 0;
    }
};

/** Reconstruct all frame lifecycles from cat=="frame" async events. */
std::vector<FrameLifecycle> frameLifecycles(const TraceFile &f);

} // namespace vip

#endif // VIP_OBS_TRACE_CHECK_HH
