#include "obs/flight_recorder.hh"

#include <filesystem>
#include <fstream>

#include "obs/json.hh"
#include "obs/provenance.hh"
#include "obs/stat_registry.hh"
#include "obs/tracer.hh"
#include "sim/logging.hh"

namespace vip
{

namespace
{

void
writeCrashJson(std::ostream &os, const PostmortemInfo &info)
{
    os << "{\n";
    os << "  \"schemaVersion\": 1,\n";
    os << "  \"kind\": \"vip-crash\",\n";
    os << "  \"provenance\": {";
    bool first = true;
    for (const auto &[k, v] : provenanceFields()) {
        os << (first ? "" : ", ") << '"' << k << "\": \"" << v << '"';
        first = false;
    }
    os << "},\n";
    os << "  \"run\": {";
    first = true;
    for (const auto &[k, v] : info.meta) {
        os << (first ? "" : ", ") << '"' << k
           << "\": " << json::quoted(v);
        first = false;
    }
    os << "},\n";
    os << "  \"crash\": {\n";
    os << "    \"kind\": " << json::quoted(info.kind) << ",\n";
    os << "    \"reason\": " << json::quoted(info.reason) << ",\n";
    os << "    \"tick\": " << info.tick << ",\n";
    os << "    \"stateDigest\": \"0x" << std::hex << info.stateDigest
       << std::dec << "\",\n";
    os << "    \"faultPlan\": " << json::quoted(info.faultPlan)
       << ",\n";
    os << "    \"metricsCsv\": " << json::quoted(info.metricsPath)
       << ",\n";
    os << "    \"checkpoint\": " << json::quoted(info.checkpointPath)
       << ",\n";
    os << "    \"checkpointTick\": " << info.checkpointTick << "\n";
    os << "  }\n";
    os << "}\n";
}

} // namespace

bool
writePostmortemBundle(const std::string &dir,
                      const PostmortemInfo &info,
                      const StatRegistry *registry,
                      const Tracer *tracer)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
        warn("postmortem: cannot create ", dir, ": ", ec.message());
        return false;
    }

    bool ok = true;
    auto emit = [&](const char *file, auto &&writer) {
        std::string path = (fs::path(dir) / file).string();
        std::ofstream os(path);
        if (!os) {
            warn("postmortem: cannot open ", path);
            ok = false;
            return;
        }
        writer(os);
        os.flush();
        if (!os) {
            warn("postmortem: short write to ", path);
            ok = false;
        }
    };

    emit("crash.json",
         [&](std::ostream &os) { writeCrashJson(os, info); });
    if (registry) {
        emit("stats.json", [&](std::ostream &os) {
            registry->writeJson(os, info.meta);
        });
    }
    if (tracer) {
        emit("trace-tail.json", [&](std::ostream &os) {
            tracer->writeJson(os, info.meta);
        });
    }
    if (ok)
        inform("postmortem: crash bundle written to ", dir);
    return ok;
}

} // namespace vip
