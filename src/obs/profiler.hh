/**
 * @file
 * Profiler: the simulator's hot-path self-profiler (--prof).
 *
 * Attributes wall time to the event loop itself: which event kinds
 * dominate dispatch counts and wall cost, how the EventQueue's
 * occupancy (live events, heap slots, tombstones, compactions)
 * evolves over simulated time, and how the run's simulated-seconds-
 * per-wall-second breaks down.  This is the cost-attribution substrate
 * the event-loop optimization work (ROADMAP item 1) is aimed with.
 *
 * Digest-neutrality contract (same as the tracer): the profiler is
 * attached to the EventQueue through a nullable observer pointer, it
 * never schedules or cancels events, never consumes randomness, and
 * none of its state enters any stateDigest().  A profiled run's audit
 * digest stream is bit-identical to an unprofiled one.
 *
 * Overhead model: every dispatch pays one pointer-identity hash-table
 * probe and a counter increment (event kinds are string literals, so
 * identity compares are pointer compares; slots that alias the same
 * name across translation units are merged by strcmp at report time).
 * steady_clock is only read on every sampleEvery-th event, and the
 * queue-occupancy timeline decimates itself (stride doubling) once
 * its bounded buffer fills, so memory and timing cost stay O(1) per
 * event and total overhead stays under the 5% budget that
 * bench_microbench --sim-throughput measures.
 */

#ifndef VIP_OBS_PROFILER_HH
#define VIP_OBS_PROFILER_HH

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/prof_config.hh"
#include "sim/types.hh"

namespace vip
{

/**
 * The catalog of event-kind tags used by the component schedule()
 * sites.  Fixed so the prof.* stat namespace is stable across runs
 * and configurations; untagged events (kind == nullptr) fold into
 * "other".
 */
extern const char *const kProfKindCatalog[];
extern const std::size_t kProfKindCatalogSize;

/** Merged per-kind dispatch accounting (by name, report order). */
struct ProfKindRow
{
    std::string kind;
    std::uint64_t count = 0;   ///< all dispatches
    std::uint64_t sampled = 0; ///< dispatches that were wall-timed
    std::uint64_t wallNs = 0;  ///< summed wall ns over sampled ones
    /** count-scaled estimate of this kind's total callback wall ns. */
    double estTotalNs() const
    {
        return sampled == 0
                   ? 0.0
                   : static_cast<double>(wallNs) *
                         (static_cast<double>(count) /
                          static_cast<double>(sampled));
    }
};

/** One queue-occupancy timeline sample (taken on timed dispatches). */
struct ProfQueueSample
{
    Tick tick = 0;
    std::uint32_t pending = 0; ///< live events
    std::uint32_t heap = 0;    ///< heap slots incl. tombstones
};

class Profiler
{
  public:
    explicit Profiler(const ProfConfig &cfg);

    /** @{ EventQueue hooks (hot path).
     *
     * beginDispatch() accounts the event and returns true when this
     * dispatch is wall-timed; the queue then calls endDispatch()
     * right after the callback returns.  Both are observational. */
    bool
    beginDispatch(const char *kind, Tick now, std::size_t pending,
                  std::size_t heapSize)
    {
        KindSlot &s = slotFor(kind);
        ++s.count;
        if (++_sinceSample < _sampleEvery)
            return false;
        _sinceSample = 0;
        ++s.sampled;
        _curSlot = &s;
        sampleQueue(now, pending, heapSize);
        _t0 = std::chrono::steady_clock::now();
        return true;
    }

    void
    endDispatch()
    {
        const auto t1 = std::chrono::steady_clock::now();
        _curSlot->wallNs += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t1 - _t0)
                .count());
    }
    /** @} */

    /** @{ run-level bookkeeping (set by Simulation, not the queue) */
    void setRunWallMs(double ms) { _runWallMs = ms; }
    void noteCompactions(std::uint64_t n) { _compactions = n; }
    void noteAllocCursor(std::uint64_t c) { _allocCursor = c; }
    /** @} */

    std::uint64_t dispatches() const;
    std::uint64_t sampledDispatches() const;
    std::uint64_t sampleEvery() const { return _sampleEvery; }
    double runWallMs() const { return _runWallMs; }

    /** Per-kind rows merged by name, sorted by estimated wall cost
     *  (descending); stable and deterministic given the counters. */
    std::vector<ProfKindRow> rows() const;

    /** Exact dispatch count for one catalog kind (stat getters). */
    double countFor(const char *kind) const;
    /** Summed sampled wall ns for one catalog kind (stat getters). */
    double wallNsFor(const char *kind) const;

    /** @{ queue-occupancy timeline */
    const std::vector<ProfQueueSample> &timeline() const
    {
        return _timeline;
    }
    /** Events between consecutive timeline samples. */
    std::uint64_t timelineStride() const
    {
        return _sampleEvery * _timelineDecimation;
    }
    std::uint32_t maxPending() const { return _maxPending; }
    std::uint32_t maxHeap() const { return _maxHeap; }
    /** @} */

    /**
     * Write the prof.json document vip_prof consumes: run context,
     * sim-vs-wall figures, per-kind table, queue-pressure timeline
     * and allocator/heap-churn counters.
     */
    void
    writeJson(std::ostream &os, double simMs,
              const std::vector<std::pair<std::string, std::string>>
                  &runMeta) const;

    static constexpr int kSchemaVersion = 1;

  private:
    struct KindSlot
    {
        const char *kind = nullptr;
        std::uint64_t count = 0;
        std::uint64_t sampled = 0;
        std::uint64_t wallNs = 0;
    };

    /** Pointer-identity open-addressing lookup (hot path). */
    KindSlot &
    slotFor(const char *kind)
    {
        if (!kind)
            kind = kOtherKind;
        std::size_t h =
            (reinterpret_cast<std::uintptr_t>(kind) >> 3) &
            (kSlots - 1);
        while (true) {
            KindSlot &s = _table[h];
            if (s.kind == kind)
                return s;
            if (!s.kind) {
                s.kind = kind;
                _used.push_back(h);
                return s;
            }
            h = (h + 1) & (kSlots - 1);
        }
    }

    /** Occupancy-timeline sample on a timed dispatch.  Inline (like
     *  the dispatch hooks) so the event queue's translation unit
     *  needs no out-of-line profiler symbols — vip_sim must not
     *  depend on the vip_obs archive. */
    void
    sampleQueue(Tick now, std::size_t pending, std::size_t heapSize)
    {
        const auto p = static_cast<std::uint32_t>(pending);
        const auto h = static_cast<std::uint32_t>(heapSize);
        _maxPending = std::max(_maxPending, p);
        _maxHeap = std::max(_maxHeap, h);
        if (_timelineSkip > 0) {
            --_timelineSkip;
            return;
        }
        if (_timeline.size() >= kTimelineCap) {
            // Keep every 2nd sample and double the stride: the
            // timeline stays bounded while spanning the whole run.
            std::size_t kept = 0;
            for (std::size_t i = 0; i < _timeline.size(); i += 2)
                _timeline[kept++] = _timeline[i];
            _timeline.resize(kept);
            _timelineDecimation *= 2;
        }
        _timeline.push_back(ProfQueueSample{now, p, h});
        _timelineSkip = _timelineDecimation - 1;
    }

    /** One address across all translation units (C++17 inline). */
    static constexpr const char kOtherKind[] = "other";
    static constexpr std::size_t kSlots = 128;
    static constexpr std::size_t kTimelineCap = 2048;

    std::uint64_t _sampleEvery;
    std::uint64_t _sinceSample = 0;
    KindSlot *_curSlot = nullptr;
    std::chrono::steady_clock::time_point _t0{};

    std::array<KindSlot, kSlots> _table{};
    std::vector<std::size_t> _used; ///< occupied table indices

    /** Bounded occupancy timeline; decimates (keep-every-2nd, double
     *  the stride) whenever it fills, so long runs keep a coarse but
     *  complete picture. */
    std::vector<ProfQueueSample> _timeline;
    std::uint64_t _timelineDecimation = 1;
    std::uint64_t _timelineSkip = 0; ///< samples until next keep
    std::uint32_t _maxPending = 0;
    std::uint32_t _maxHeap = 0;

    double _runWallMs = 0.0;
    std::uint64_t _compactions = 0;
    std::uint64_t _allocCursor = 0;
};

} // namespace vip

#endif // VIP_OBS_PROFILER_HH
