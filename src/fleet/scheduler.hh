/**
 * @file
 * FleetScheduler: the supervision state machine, pure of any process
 * or thread handling so every transition is unit-testable with a fake
 * clock.
 *
 * Per-job lifecycle:
 *
 *     Pending ──claim──> Running ──accepted success──────> Done
 *        ^                  │  │
 *        │     launch failed│  ├─failure, attempts left──> Backoff
 *        │  (claim released)│  │        │
 *        ├──────────────────┘  ├─lease expired───────────> Backoff
 *        └──ready (clock)──────┘        │
 *                                       └─attempt cap────> Failed
 *
 * Ownership is lease-fenced.  Every claim issues a monotonically
 * increasing fencing token and a lease deadline; the lease renews on
 * any evidence the attempt is alive (a Running poll, heartbeat
 * progress).  When a lease expires — partitioned host, wedged
 * transport — the job is released for another worker under a larger
 * token.  Results are *accepted*, not just reported: an artifact
 * set carrying a stale token (a zombie attempt from an expired lease
 * that finished anyway) is rejected and counted, never merged; with
 * the current token it is accepted even from Backoff/Failed (a
 * zombie rescue: the attempt outlived its lease but no newer attempt
 * was ever issued), and a Done job never accepts twice.  Exactly
 * once, no matter how late the network delivers.
 *
 * A failure carries whether the shard left a resumable checkpoint;
 * when it did (and the policy allows), the next attempt is marked to
 * resume from the ring instead of rerunning from tick 0.  Failed jobs
 * are terminal but never abort the sweep: the fleet completes and
 * reports them in the merged report's failed_jobs section — except
 * failAllUnsettled(), the every-host-dead terminal path.
 */

#ifndef VIP_FLEET_SCHEDULER_HH
#define VIP_FLEET_SCHEDULER_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "fleet/job_spec.hh"

namespace vip
{
namespace fleet
{

enum class JobState
{
    Pending,  ///< waiting for a worker slot
    Running,  ///< claimed by a worker, lease live
    Backoff,  ///< failed or lease-expired, waiting out the delay
    Done,     ///< completed successfully
    Failed,   ///< attempt cap reached; terminal
};

const char *jobStateName(JobState s);

/** Everything the supervisor tracks about one job. */
struct JobProgress
{
    FleetJob job;
    JobState state = JobState::Pending;
    int attempts = 0;           ///< attempts started so far
    double readyAtMs = 0.0;     ///< Backoff: eligible wall time
    bool resumeNext = false;    ///< next attempt restores a checkpoint
    bool everResumed = false;   ///< any attempt restored a checkpoint
    std::string lastError;      ///< most recent failure reason
    std::vector<std::string> history; ///< one line per failed attempt
    double wallMs = 0.0;        ///< total wall time across attempts

    /** @{ lease-fenced ownership */
    std::uint64_t token = 0;    ///< newest fencing token issued
    double leaseUntilMs =
        std::numeric_limits<double>::infinity();
    std::string host;           ///< owner of the newest attempt
    int leaseExpiries = 0;      ///< attempts lost to expired leases
    int zombieRejects = 0;      ///< stale-token results refused
    bool rescued = false;       ///< done via a post-expiry zombie
    /** @} */
};

class FleetScheduler
{
  public:
    FleetScheduler(std::vector<FleetJob> jobs, FleetPolicy policy);

    /**
     * Claim the next job eligible to start at wall time @p nowMs for
     * @p host: Pending jobs first (spec order), then Backoff jobs
     * whose delay has elapsed.  Marks it Running, counts the
     * attempt, and issues a fresh fencing token with a lease of
     * policy.leaseMs (0 = unleased, never expires).
     * @return the job index, or npos when nothing is eligible now.
     */
    std::size_t claimNext(double nowMs,
                          const std::string &host = "local");
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /**
     * The launch itself failed (a transport error: the worker never
     * existed, so no zombie is possible).  Returns the job to
     * Pending without burning the attempt; another host picks it up.
     */
    void releaseClaim(std::size_t idx);

    /** Evidence the attempt is alive: push the lease out. */
    void renewLease(std::size_t idx, double nowMs);

    /** Running with an expired lease at @p nowMs. */
    bool leaseExpired(std::size_t idx, double nowMs) const;

    /**
     * Give up on a Running attempt whose lease lapsed.  Burns the
     * attempt (Backoff or Failed at the cap) but keeps the token:
     * should the zombie still finish before a retry claims the job,
     * its result is rescued rather than wasted.
     */
    void onLeaseExpired(std::size_t idx, double nowMs,
                        double elapsedMs, const std::string &why,
                        bool canResume);

    /**
     * Offer a successful result under @p token.  Accepted (true)
     * when the token is current and the job has not completed some
     * other way; rejected (false, counted) for stale tokens and
     * duplicates.  Only accepted offers may be merged.
     */
    bool acceptSuccess(std::size_t idx, std::uint64_t token,
                       double elapsedMs);

    /**
     * Offer a failure under @p token.  Acted on (true) only for the
     * current token of a still-Running job; stale and post-expiry
     * reports are ignored (false) — their attempt was already
     * accounted.
     */
    bool acceptFailure(std::size_t idx, std::uint64_t token,
                       double nowMs, double elapsedMs,
                       const std::string &why, bool canResume);

    /** @{ Unfenced convenience for the current token (fake-clock
     *  unit tests of the plain retry ladder). */
    void onSuccess(std::size_t idx, double elapsedMs);
    void onFailure(std::size_t idx, double nowMs, double elapsedMs,
                   const std::string &why, bool canResume);
    /** @} */

    /**
     * Terminal degradation (every host dead): everything not yet
     * Done or Failed becomes Failed with @p why on its record.
     * Returns how many jobs were abandoned.
     */
    std::size_t failAllUnsettled(const std::string &why);

    /** True when no job is Pending, Running, or in Backoff. */
    bool allSettled() const;

    /** Earliest Backoff deadline, or +inf when none are waiting
     *  (lets the supervisor sleep exactly as long as it may). */
    double nextReadyMs() const;

    /** @{ outcome accounting */
    std::size_t doneCount() const { return count(JobState::Done); }
    std::size_t failedCount() const { return count(JobState::Failed); }
    std::size_t runningCount() const { return count(JobState::Running); }
    long leaseExpiries() const { return _leaseExpiries; }
    long zombieRejects() const { return _zombieRejects; }
    long zombieRescues() const { return _zombieRescues; }
    /** @} */

    const std::vector<JobProgress> &jobs() const { return _jobs; }
    const JobProgress &job(std::size_t idx) const { return _jobs[idx]; }
    const FleetPolicy &policy() const { return _policy; }

  private:
    std::size_t count(JobState s) const;
    void startAttempt(JobProgress &p, double nowMs,
                      const std::string &host);

    std::vector<JobProgress> _jobs;
    FleetPolicy _policy;
    std::uint64_t _nextToken = 0;
    long _leaseExpiries = 0;
    long _zombieRejects = 0;
    long _zombieRescues = 0;
};

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_SCHEDULER_HH
