/**
 * @file
 * FleetScheduler: the supervision state machine, pure of any process
 * or thread handling so every transition is unit-testable with a fake
 * clock.
 *
 * Per-job lifecycle:
 *
 *     Pending ──claim──> Running ──success──────────> Done
 *        ^                  │
 *        │                  ├─failure, attempts left─> Backoff
 *        └──ready (clock)───┘        │
 *                                    └─attempt cap───> Failed
 *
 * A failure carries whether the shard left a resumable checkpoint;
 * when it did (and the policy allows), the next attempt is marked to
 * resume from the ring instead of rerunning from tick 0.  Failed jobs
 * are terminal but never abort the sweep: the fleet completes and
 * reports them in the merged report's failed_jobs section.
 */

#ifndef VIP_FLEET_SCHEDULER_HH
#define VIP_FLEET_SCHEDULER_HH

#include <cstddef>
#include <string>
#include <vector>

#include "fleet/job_spec.hh"

namespace vip
{
namespace fleet
{

enum class JobState
{
    Pending,  ///< waiting for a worker slot
    Running,  ///< claimed by a worker
    Backoff,  ///< failed, waiting out the retry delay
    Done,     ///< completed successfully
    Failed,   ///< attempt cap reached; terminal
};

const char *jobStateName(JobState s);

/** Everything the supervisor tracks about one job. */
struct JobProgress
{
    FleetJob job;
    JobState state = JobState::Pending;
    int attempts = 0;           ///< attempts started so far
    double readyAtMs = 0.0;     ///< Backoff: eligible wall time
    bool resumeNext = false;    ///< next attempt restores a checkpoint
    bool everResumed = false;   ///< any attempt restored a checkpoint
    std::string lastError;      ///< most recent failure reason
    std::vector<std::string> history; ///< one line per failed attempt
    double wallMs = 0.0;        ///< total wall time across attempts
};

class FleetScheduler
{
  public:
    FleetScheduler(std::vector<FleetJob> jobs, FleetPolicy policy);

    /**
     * Claim the next job eligible to start at wall time @p nowMs:
     * Pending jobs first (spec order), then Backoff jobs whose delay
     * has elapsed.  Marks it Running and counts the attempt.
     * @return the job index, or npos when nothing is eligible now.
     */
    std::size_t claimNext(double nowMs);
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);

    /** The claimed job finished cleanly. */
    void onSuccess(std::size_t idx, double elapsedMs);

    /**
     * The claimed job died (nonzero exit, signal, hang-kill, or an
     * in-process exception).  @p canResume is whether the shard left
     * a loadable checkpoint behind; combined with the policy it
     * decides whether the retry restores or restarts.
     */
    void onFailure(std::size_t idx, double nowMs, double elapsedMs,
                   const std::string &why, bool canResume);

    /** True when no job is Pending, Running, or in Backoff. */
    bool allSettled() const;

    /** Earliest Backoff deadline, or +inf when none are waiting
     *  (lets the supervisor sleep exactly as long as it may). */
    double nextReadyMs() const;

    /** @{ outcome accounting */
    std::size_t doneCount() const { return count(JobState::Done); }
    std::size_t failedCount() const { return count(JobState::Failed); }
    std::size_t runningCount() const { return count(JobState::Running); }
    /** @} */

    const std::vector<JobProgress> &jobs() const { return _jobs; }
    const JobProgress &job(std::size_t idx) const { return _jobs[idx]; }
    const FleetPolicy &policy() const { return _policy; }

  private:
    std::size_t count(JobState s) const;

    std::vector<JobProgress> _jobs;
    FleetPolicy _policy;
};

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_SCHEDULER_HH
