/**
 * @file
 * Per-host health scoring: consecutive transport failures send a
 * host to quarantine, re-admission probes (with widening intervals)
 * bring it back, and a host that keeps flapping — or never answers a
 * probe — is declared dead and its work reassigned for good.
 *
 * Only *transport* failures count (unreachable polls, failed
 * fetches, dead heartbeat probes, failed launches).  A worker
 * exiting nonzero is the job's problem, not the host's: a sweep
 * full of crashing configs must not quarantine a perfectly good
 * machine.
 *
 * All timing flows through caller-supplied nowMs, so the whole
 * state machine is unit-testable with a fake clock.
 */

#ifndef VIP_FLEET_HEALTH_HH
#define VIP_FLEET_HEALTH_HH

#include <string>

namespace vip
{
namespace fleet
{

struct HealthPolicy
{
    int quarantineAfter = 3;      ///< consecutive failures → quarantine
    double probeIntervalMs = 500; ///< first re-admission probe delay
    int maxProbes = 5;            ///< failed probes in one quarantine → dead
    int maxQuarantines = 3;       ///< re-quarantines → dead
};

enum class HostState
{
    Healthy,
    Quarantined, ///< no new work; periodic re-admission probes
    Dead,        ///< permanently out of the rotation
};

class HostHealth
{
  public:
    explicit HostHealth(HealthPolicy policy) : _policy(policy) {}

    HostState state() const { return _state; }
    bool usable() const { return _state == HostState::Healthy; }

    /** A transport op succeeded: clear the failure streak. */
    void onOpSuccess() { _consecutiveFailures = 0; }

    /** A transport op failed.  Returns true when this failure tips
     *  the host into quarantine (or straight to dead, if it has
     *  exhausted its re-admissions). */
    bool onOpFailure(double nowMs, const std::string &detail);

    /** A quarantined host whose next probe is due. */
    bool probeDue(double nowMs) const
    {
        return _state == HostState::Quarantined &&
               nowMs >= _nextProbeMs;
    }

    /** Probe answered: re-admit. */
    void onProbeSuccess();

    /** Probe failed.  Returns true when the host is now dead. */
    bool onProbeFailure(double nowMs, const std::string &detail);

    /** @{ report fields */
    int quarantines() const { return _quarantineCount; }
    long opFailures() const { return _totalOpFailures; }
    const std::string &lastError() const { return _lastError; }
    const char *stateName() const;
    /** @} */

  private:
    void enterQuarantine(double nowMs);

    HealthPolicy _policy;
    HostState _state = HostState::Healthy;
    int _consecutiveFailures = 0;
    long _totalOpFailures = 0;
    int _quarantineCount = 0;     ///< times quarantined, ever
    int _probeFailures = 0;       ///< within the current quarantine
    double _nextProbeMs = 0.0;
    double _probeIntervalMs = 0.0;
    std::string _lastError;
};

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_HEALTH_HH
