#include "fleet/journal.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace vip
{
namespace fleet
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

void
FleetJournal::open(const std::string &path)
{
    if (path.empty())
        return;
    _out.open(path, std::ios::trunc);
    if (!_out)
        fatal("fleet: cannot open journal ", path);
}

FleetJournal::Record::Record(FleetJournal *j, double wallMs,
                             const char *type)
    : _j(j)
{
    if (!_j)
        return;
    _line = "{\"seq\": " + std::to_string(_j->_seq++) +
            ", \"wall_ms\": " + jsonNum(wallMs) + ", \"type\": \"" +
            type + "\"";
}

FleetJournal::Record::~Record()
{
    if (!_j)
        return;
    // Flushed per record: the journal must survive a SIGKILL
    // mid-sweep (that is its whole point).
    _j->_out << _line << "}\n" << std::flush;
}

FleetJournal::Record &
FleetJournal::Record::str(const char *key, const std::string &v)
{
    if (_j)
        _line += ", \"" + std::string(key) + "\": \"" +
                 jsonEscape(v) + "\"";
    return *this;
}

FleetJournal::Record &
FleetJournal::Record::num(const char *key, double v)
{
    if (_j)
        _line += ", \"" + std::string(key) + "\": " + jsonNum(v);
    return *this;
}

FleetJournal::Record &
FleetJournal::Record::u64(const char *key, std::uint64_t v)
{
    if (_j)
        _line += ", \"" + std::string(key) + "\": " +
                 std::to_string(v);
    return *this;
}

FleetJournal::Record &
FleetJournal::Record::b(const char *key, bool v)
{
    if (_j)
        _line += ", \"" + std::string(key) +
                 (v ? "\": true" : "\": false");
    return *this;
}

FleetJournal::Record
FleetJournal::event(double wallMs, const char *type)
{
    return Record(enabled() ? this : nullptr, wallMs, type);
}

} // namespace fleet
} // namespace vip
