/**
 * @file
 * Host roster for distributed sweeps: the --hosts JSON file format,
 * and the factory that turns one HostSpec into a WorkerTransport
 * (optionally wrapped in a FaultyTransport for chaos runs).
 *
 * Hosts file shape:
 *
 *   { "hosts": [
 *       { "name": "local", "transport": "process", "slots": 4 },
 *       { "name": "node7", "transport": "ssh", "slots": 8,
 *         "ssh": ["ssh", "-oBatchMode=yes", "node7"],
 *         "remote_dir": "/tmp/vip-fleet",
 *         "vip_sim": "/opt/vip/bin/vip_sim",
 *         "op_timeout_ms": 30000, "op_retries": 3 },
 *       { "name": "flaky", "transport": "process", "slots": 2,
 *         "fault": "seed=7,drop=0.1,partition@40+25" } ] }
 *
 * "transport" is "process" (local fork/exec), "thread" (in-process),
 * or "ssh".  A per-host "fault" spec wraps that host only; the
 * --fault CLI flag wraps every host that has no spec of its own.
 */

#ifndef VIP_FLEET_HOSTS_HH
#define VIP_FLEET_HOSTS_HH

#include <memory>
#include <string>
#include <vector>

#include "fleet/transport/remote_transport.hh"
#include "fleet/transport/transport.hh"

namespace vip
{
namespace fleet
{

struct HostSpec
{
    std::string name;
    std::string transport = "process"; ///< process | thread | ssh
    int slots = 1;                     ///< concurrent attempts
    std::string faultSpec;             ///< "" = no injection
    RemoteHostOptions remote;          ///< ssh transport only
};

/** Parse a --hosts JSON file.  False + *err on malformed input. */
bool parseHostsFile(const std::string &path,
                    std::vector<HostSpec> *out, std::string *err);

/**
 * Build the transport for @p host.  @p vipSimPath is the local
 * worker binary (process/thread transports; also the default remote
 * binary when the host spec leaves "vip_sim" empty).
 * @p globalFaultSpec applies to hosts without their own "fault"
 * entry ("" = none).  Returns nullptr + *err on a bad fault spec or
 * unknown transport kind.
 */
std::unique_ptr<WorkerTransport>
makeTransport(const HostSpec &host, const std::string &vipSimPath,
              const std::string &globalFaultSpec, std::string *err);

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_HOSTS_HH
