#include "fleet/hosts.hh"

#include <fstream>
#include <sstream>

#include "fleet/transport/faulty_transport.hh"
#include "fleet/transport/local_transport.hh"
#include "fleet/transport/thread_transport.hh"
#include "obs/json.hh"

namespace vip
{
namespace fleet
{

bool
parseHostsFile(const std::string &path, std::vector<HostSpec> *out,
               std::string *err)
{
    out->clear();
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = "cannot open hosts file " + path;
        return false;
    }
    json::JsonValue doc;
    try {
        doc = json::parse(in);
    } catch (const std::exception &e) {
        if (err)
            *err = path + ": " + e.what();
        return false;
    }
    const json::JsonValue *hosts = doc.find("hosts");
    if (!hosts || hosts->kind != json::JsonValue::Kind::Array ||
        hosts->arr.empty()) {
        if (err)
            *err = path + ": expected a non-empty \"hosts\" array";
        return false;
    }

    for (std::size_t i = 0; i < hosts->arr.size(); ++i) {
        const json::JsonValue &h = hosts->arr[i];
        if (h.kind != json::JsonValue::Kind::Object) {
            if (err)
                *err = path + ": hosts[" + std::to_string(i) +
                       "] is not an object";
            return false;
        }
        HostSpec spec;
        spec.name = json::strField(h, "name");
        if (spec.name.empty())
            spec.name = "host" + std::to_string(i);
        const std::string kind = json::strField(h, "transport");
        if (!kind.empty())
            spec.transport = kind;
        if (spec.transport != "process" &&
            spec.transport != "thread" && spec.transport != "ssh") {
            if (err)
                *err = path + ": host " + spec.name +
                       ": unknown transport \"" + spec.transport +
                       "\"";
            return false;
        }
        const double slots = json::numField(h, "slots");
        if (slots > 0.0)
            spec.slots = static_cast<int>(slots);
        spec.faultSpec = json::strField(h, "fault");

        if (spec.transport == "ssh") {
            spec.remote.name = spec.name;
            const json::JsonValue *ssh = h.find("ssh");
            if (!ssh ||
                ssh->kind != json::JsonValue::Kind::Array ||
                ssh->arr.empty()) {
                if (err)
                    *err = path + ": host " + spec.name +
                           ": ssh transport needs a non-empty "
                           "\"ssh\" argv array";
                return false;
            }
            for (const auto &a : ssh->arr) {
                if (a.kind != json::JsonValue::Kind::String) {
                    if (err)
                        *err = path + ": host " + spec.name +
                               ": \"ssh\" entries must be strings";
                    return false;
                }
                spec.remote.sshCmd.push_back(a.str);
            }
            spec.remote.remoteDir = json::strField(h, "remote_dir");
            if (spec.remote.remoteDir.empty()) {
                if (err)
                    *err = path + ": host " + spec.name +
                           ": ssh transport needs \"remote_dir\"";
                return false;
            }
            spec.remote.vipSim = json::strField(h, "vip_sim");
            const double t = json::numField(h, "op_timeout_ms");
            if (t > 0.0)
                spec.remote.opTimeoutMs = t;
            const double r = json::numField(h, "op_retries");
            if (r > 0.0)
                spec.remote.opRetries = static_cast<int>(r);
        }
        out->push_back(std::move(spec));
    }

    for (std::size_t i = 0; i < out->size(); ++i)
        for (std::size_t j = i + 1; j < out->size(); ++j)
            if ((*out)[i].name == (*out)[j].name) {
                if (err)
                    *err = path + ": duplicate host name \"" +
                           (*out)[i].name + "\"";
                return false;
            }
    return true;
}

std::unique_ptr<WorkerTransport>
makeTransport(const HostSpec &host, const std::string &vipSimPath,
              const std::string &globalFaultSpec, std::string *err)
{
    std::unique_ptr<WorkerTransport> inner;
    if (host.transport == "process") {
        inner = std::make_unique<LocalTransport>(vipSimPath);
    } else if (host.transport == "thread") {
        inner = std::make_unique<ThreadTransport>();
    } else if (host.transport == "ssh") {
        RemoteHostOptions opt = host.remote;
        if (opt.vipSim.empty())
            opt.vipSim = vipSimPath;
        inner = std::make_unique<RemoteTransport>(std::move(opt));
    } else {
        if (err)
            *err = "unknown transport \"" + host.transport + "\"";
        return nullptr;
    }

    const std::string &fault =
        host.faultSpec.empty() ? globalFaultSpec : host.faultSpec;
    if (fault.empty())
        return inner;
    FaultSpec spec;
    if (!FaultSpec::parse(fault, &spec, err))
        return nullptr;
    return std::make_unique<FaultyTransport>(std::move(inner), spec);
}

} // namespace fleet
} // namespace vip
