#include "fleet/scheduler.hh"

#include "fleet/backoff.hh"
#include "sim/logging.hh"

namespace vip
{
namespace fleet
{

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Pending: return "pending";
      case JobState::Running: return "running";
      case JobState::Backoff: return "backoff";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
    }
    return "?";
}

FleetScheduler::FleetScheduler(std::vector<FleetJob> jobs,
                               FleetPolicy policy)
    : _policy(policy)
{
    _jobs.reserve(jobs.size());
    for (auto &j : jobs) {
        JobProgress p;
        p.job = std::move(j);
        _jobs.push_back(std::move(p));
    }
}

void
FleetScheduler::startAttempt(JobProgress &p, double nowMs,
                             const std::string &host)
{
    p.state = JobState::Running;
    ++p.attempts;
    p.token = ++_nextToken;
    p.host = host;
    p.leaseUntilMs =
        _policy.leaseMs > 0.0
            ? nowMs + _policy.leaseMs
            : std::numeric_limits<double>::infinity();
}

std::size_t
FleetScheduler::claimNext(double nowMs, const std::string &host)
{
    std::size_t backoffPick = npos;
    for (std::size_t i = 0; i < _jobs.size(); ++i) {
        JobProgress &p = _jobs[i];
        if (p.state == JobState::Pending) {
            startAttempt(p, nowMs, host);
            return i;
        }
        if (p.state == JobState::Backoff && nowMs >= p.readyAtMs &&
            backoffPick == npos) {
            backoffPick = i;
        }
    }
    if (backoffPick != npos)
        startAttempt(_jobs[backoffPick], nowMs, host);
    return backoffPick;
}

void
FleetScheduler::releaseClaim(std::size_t idx)
{
    vip_assert(idx < _jobs.size(), "releaseClaim: job ", idx);
    JobProgress &p = _jobs[idx];
    vip_assert(p.state == JobState::Running, "releaseClaim on a job "
               "in state ", jobStateName(p.state));
    // The worker never started: the attempt doesn't count, and the
    // token can never surface in a result.
    p.state = JobState::Pending;
    --p.attempts;
    p.host.clear();
    p.leaseUntilMs = std::numeric_limits<double>::infinity();
}

void
FleetScheduler::renewLease(std::size_t idx, double nowMs)
{
    vip_assert(idx < _jobs.size(), "renewLease: job ", idx);
    JobProgress &p = _jobs[idx];
    if (p.state == JobState::Running && _policy.leaseMs > 0.0)
        p.leaseUntilMs = nowMs + _policy.leaseMs;
}

bool
FleetScheduler::leaseExpired(std::size_t idx, double nowMs) const
{
    const JobProgress &p = _jobs[idx];
    return p.state == JobState::Running && nowMs > p.leaseUntilMs;
}

void
FleetScheduler::onLeaseExpired(std::size_t idx, double nowMs,
                               double elapsedMs,
                               const std::string &why, bool canResume)
{
    vip_assert(idx < _jobs.size(), "onLeaseExpired: job ", idx);
    JobProgress &p = _jobs[idx];
    vip_assert(p.state == JobState::Running, "onLeaseExpired on a "
               "job in state ", jobStateName(p.state));
    ++_leaseExpiries;
    ++p.leaseExpiries;
    p.wallMs += elapsedMs;
    if (p.resumeNext)
        p.everResumed = true;
    p.lastError = why;
    p.history.push_back("attempt " + std::to_string(p.attempts) +
                        ": " + why);
    // The token deliberately stays current: if the zombie finishes
    // before a retry claims this job, its result is rescued.
    if (p.attempts >= _policy.maxAttempts) {
        p.state = JobState::Failed;
        p.resumeNext = false;
        return;
    }
    p.state = JobState::Backoff;
    p.readyAtMs =
        nowMs + retryDelayMs(_policy, p.job.id, p.attempts);
    p.resumeNext = _policy.resume && canResume;
}

bool
FleetScheduler::acceptSuccess(std::size_t idx, std::uint64_t token,
                              double elapsedMs)
{
    vip_assert(idx < _jobs.size(), "acceptSuccess: job ", idx);
    JobProgress &p = _jobs[idx];
    if (token != p.token) {
        // A newer attempt owns this job: the zombie lost the race.
        ++_zombieRejects;
        ++p.zombieRejects;
        return false;
    }
    switch (p.state) {
    case JobState::Running:
        break;
    case JobState::Backoff:
    case JobState::Failed:
        // The attempt outlived its lease, but no newer attempt was
        // ever issued — its work is valid.  Rescue it.
        ++_zombieRescues;
        p.rescued = true;
        break;
    case JobState::Done:
    case JobState::Pending:
        // Done: this attempt already committed once — a duplicate
        // delivery must not merge twice.  Pending: a released claim
        // cannot produce results (no worker ever ran).
        ++_zombieRejects;
        ++p.zombieRejects;
        return false;
    }
    p.state = JobState::Done;
    p.wallMs += elapsedMs;
    if (p.resumeNext)
        p.everResumed = true;
    p.resumeNext = false;
    p.leaseUntilMs = std::numeric_limits<double>::infinity();
    return true;
}

bool
FleetScheduler::acceptFailure(std::size_t idx, std::uint64_t token,
                              double nowMs, double elapsedMs,
                              const std::string &why, bool canResume)
{
    vip_assert(idx < _jobs.size(), "acceptFailure: job ", idx);
    JobProgress &p = _jobs[idx];
    if (token != p.token || p.state != JobState::Running) {
        // Stale token, or an attempt already written off by lease
        // expiry — either way this failure is already accounted.
        if (token != p.token) {
            ++_zombieRejects;
            ++p.zombieRejects;
        }
        return false;
    }
    p.wallMs += elapsedMs;
    if (p.resumeNext)
        p.everResumed = true;
    p.lastError = why;
    p.history.push_back("attempt " + std::to_string(p.attempts) +
                        ": " + why);
    p.leaseUntilMs = std::numeric_limits<double>::infinity();
    if (p.attempts >= _policy.maxAttempts) {
        p.state = JobState::Failed;
        p.resumeNext = false;
        return true;
    }
    p.state = JobState::Backoff;
    p.readyAtMs =
        nowMs + retryDelayMs(_policy, p.job.id, p.attempts);
    p.resumeNext = _policy.resume && canResume;
    return true;
}

void
FleetScheduler::onSuccess(std::size_t idx, double elapsedMs)
{
    vip_assert(idx < _jobs.size(), "onSuccess: job ", idx);
    JobProgress &p = _jobs[idx];
    vip_assert(p.state == JobState::Running, "onSuccess on a job in "
               "state ", jobStateName(p.state));
    const bool ok = acceptSuccess(idx, p.token, elapsedMs);
    vip_assert(ok, "onSuccess rejected for job ", idx);
}

void
FleetScheduler::onFailure(std::size_t idx, double nowMs,
                          double elapsedMs, const std::string &why,
                          bool canResume)
{
    vip_assert(idx < _jobs.size(), "onFailure: job ", idx);
    JobProgress &p = _jobs[idx];
    vip_assert(p.state == JobState::Running, "onFailure on a job in "
               "state ", jobStateName(p.state));
    const bool acted =
        acceptFailure(idx, p.token, nowMs, elapsedMs, why, canResume);
    vip_assert(acted, "onFailure ignored for job ", idx);
}

std::size_t
FleetScheduler::failAllUnsettled(const std::string &why)
{
    std::size_t n = 0;
    for (auto &p : _jobs) {
        if (p.state == JobState::Done || p.state == JobState::Failed)
            continue;
        p.state = JobState::Failed;
        p.lastError = why;
        p.history.push_back("abandoned: " + why);
        p.resumeNext = false;
        ++n;
    }
    return n;
}

bool
FleetScheduler::allSettled() const
{
    for (const auto &p : _jobs) {
        if (p.state == JobState::Pending ||
            p.state == JobState::Running ||
            p.state == JobState::Backoff)
            return false;
    }
    return true;
}

double
FleetScheduler::nextReadyMs() const
{
    double next = std::numeric_limits<double>::infinity();
    for (const auto &p : _jobs) {
        if (p.state == JobState::Backoff && p.readyAtMs < next)
            next = p.readyAtMs;
    }
    return next;
}

std::size_t
FleetScheduler::count(JobState s) const
{
    std::size_t n = 0;
    for (const auto &p : _jobs)
        n += p.state == s ? 1 : 0;
    return n;
}

} // namespace fleet
} // namespace vip
