#include "fleet/scheduler.hh"

#include <limits>

#include "fleet/backoff.hh"
#include "sim/logging.hh"

namespace vip
{
namespace fleet
{

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Pending: return "pending";
      case JobState::Running: return "running";
      case JobState::Backoff: return "backoff";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
    }
    return "?";
}

FleetScheduler::FleetScheduler(std::vector<FleetJob> jobs,
                               FleetPolicy policy)
    : _policy(policy)
{
    _jobs.reserve(jobs.size());
    for (auto &j : jobs) {
        JobProgress p;
        p.job = std::move(j);
        _jobs.push_back(std::move(p));
    }
}

std::size_t
FleetScheduler::claimNext(double nowMs)
{
    std::size_t backoffPick = npos;
    for (std::size_t i = 0; i < _jobs.size(); ++i) {
        JobProgress &p = _jobs[i];
        if (p.state == JobState::Pending) {
            p.state = JobState::Running;
            ++p.attempts;
            return i;
        }
        if (p.state == JobState::Backoff && nowMs >= p.readyAtMs &&
            backoffPick == npos) {
            backoffPick = i;
        }
    }
    if (backoffPick != npos) {
        JobProgress &p = _jobs[backoffPick];
        p.state = JobState::Running;
        ++p.attempts;
    }
    return backoffPick;
}

void
FleetScheduler::onSuccess(std::size_t idx, double elapsedMs)
{
    vip_assert(idx < _jobs.size(), "onSuccess: job ", idx);
    JobProgress &p = _jobs[idx];
    vip_assert(p.state == JobState::Running, "onSuccess on a job in "
               "state ", jobStateName(p.state));
    p.state = JobState::Done;
    p.wallMs += elapsedMs;
    if (p.resumeNext)
        p.everResumed = true;
    p.resumeNext = false;
}

void
FleetScheduler::onFailure(std::size_t idx, double nowMs,
                          double elapsedMs, const std::string &why,
                          bool canResume)
{
    vip_assert(idx < _jobs.size(), "onFailure: job ", idx);
    JobProgress &p = _jobs[idx];
    vip_assert(p.state == JobState::Running, "onFailure on a job in "
               "state ", jobStateName(p.state));
    p.wallMs += elapsedMs;
    if (p.resumeNext)
        p.everResumed = true;
    p.lastError = why;
    p.history.push_back("attempt " + std::to_string(p.attempts) +
                        ": " + why);
    if (p.attempts >= _policy.maxAttempts) {
        p.state = JobState::Failed;
        p.resumeNext = false;
        return;
    }
    p.state = JobState::Backoff;
    p.readyAtMs = nowMs + backoffDelayMs(_policy, p.attempts);
    p.resumeNext = _policy.resume && canResume;
}

bool
FleetScheduler::allSettled() const
{
    for (const auto &p : _jobs) {
        if (p.state == JobState::Pending ||
            p.state == JobState::Running ||
            p.state == JobState::Backoff)
            return false;
    }
    return true;
}

double
FleetScheduler::nextReadyMs() const
{
    double next = std::numeric_limits<double>::infinity();
    for (const auto &p : _jobs) {
        if (p.state == JobState::Backoff && p.readyAtMs < next)
            next = p.readyAtMs;
    }
    return next;
}

std::size_t
FleetScheduler::count(JobState s) const
{
    std::size_t n = 0;
    for (const auto &p : _jobs)
        n += p.state == s ? 1 : 0;
    return n;
}

} // namespace fleet
} // namespace vip
