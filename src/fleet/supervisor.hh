/**
 * @file
 * FleetSupervisor: the crash-surviving, partition-tolerant sweep
 * orchestrator behind `vip_fleet`.
 *
 * The supervisor expands a JobSpec across a roster of hosts (local
 * by default; a --hosts file adds remote ssh workers), watches every
 * attempt's liveness, and drives the FleetScheduler's lease-fenced
 * retry state machine.  It never touches a process, thread, or
 * socket directly — all of that lives behind WorkerTransport
 * (src/fleet/transport/), which is also where deterministic fault
 * injection plugs in for chaos testing.
 *
 *  - every attempt runs in its own attempt directory
 *    (<outDir>/shards/<job>/a<token>/) and streams a metrics CSV
 *    (its *heartbeat*): the newest row's tick_ms is the shard's
 *    simulated progress, and a stream that stops growing for
 *    heartbeatDeadlineMs of wall time — after a heartbeatGraceMs
 *    startup grace — means the worker is hung and gets killed;
 *  - ownership is leased: a claimed job carries a monotonic fencing
 *    token, renewed by evidence of life.  An expired lease (host
 *    partitioned or wedged) sends the job to another worker under a
 *    newer token; the orphaned attempt becomes a *zombie* whose late
 *    artifacts are fence-checked — rejected when a newer attempt
 *    owns the job, rescued when none was ever issued.  Either way
 *    nothing merges twice;
 *  - artifacts travel by checksum: a finished attempt's outputs are
 *    fetched with an FNV-1a manifest, verified locally, and only
 *    then committed to the canonical shard paths with atomic
 *    tmp+rename copies.  A corrupted or torn fetch retries; it can
 *    never half-publish;
 *  - transport failures (not worker failures) score against the
 *    host: enough consecutive failures quarantine it, re-admission
 *    probes (widening intervals) bring it back, and a host that
 *    keeps flapping is declared dead, its work reassigned to the
 *    survivors.  Every host dead is the one terminal error;
 *  - a worker that exits nonzero or dies on a signal is a job
 *    failure; the shard retries after decorrelated-jitter backoff,
 *    resuming from the newest fetched ring checkpoint when one
 *    exists.  Jobs that exhaust their attempts land in the report's
 *    failed_jobs section — the sweep completes regardless.
 *
 * Chaos injection (--kill <job>@<sim-ms>) force-kills a named job's
 * first attempt once its heartbeat crosses a simulated-time
 * threshold — deterministic enough for CI to assert that the
 * recovered shard's stats are bit-identical to an uninterrupted run.
 */

#ifndef VIP_FLEET_SUPERVISOR_HH
#define VIP_FLEET_SUPERVISOR_HH

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "fleet/health.hh"
#include "fleet/hosts.hh"
#include "fleet/job_spec.hh"
#include "fleet/journal.hh"
#include "fleet/scheduler.hh"
#include "fleet/transport/transport.hh"

namespace vip
{
namespace fleet
{

enum class WorkerMode
{
    Process, ///< fork/exec vip_sim per attempt (crash isolation)
    Thread,  ///< run Simulation on a thread per attempt (in-process)
};

const char *workerModeName(WorkerMode m);

/** Where one job's *canonical* (accepted, committed) artifacts
 *  live: <outDir>/shards/<jobId>/...  Attempts stage under
 *  <dir>/a<token>/ and only fence-checked results land here. */
struct ShardPaths
{
    std::string dir;        ///< the shard directory
    std::string statsJson;  ///< committed stats dump
    std::string metricsCsv; ///< committed heartbeat stream
    std::string series;     ///< committed time-series (series.json)
    std::string pmDir;      ///< checkpoint home
    std::string checkpoint; ///< <pmDir>/checkpoint.vips
    std::string digest;     ///< committed digest stream
    std::string log;        ///< worker stdout+stderr, all attempts
};

ShardPaths shardPaths(const std::string &outDir,
                      const std::string &jobId);

/** Attempt staging directory for one (job, token) pair. */
std::string attemptDir(const std::string &outDir,
                       const std::string &jobId, std::uint64_t token);

/** Everything run() needs beyond the spec itself. */
struct FleetOptions
{
    std::string outDir;     ///< report + shard tree root
    std::string vipSimPath; ///< worker binary (process/ssh hosts)
    WorkerMode mode = WorkerMode::Process;

    /** Host roster (--hosts).  Empty = one implicit local host named
     *  "local" running policy.workers slots in `mode`. */
    std::vector<HostSpec> hosts;

    /** Fault-injection spec (--fault) applied to every host without
     *  its own "fault" entry.  "" = none. */
    std::string faultSpec;

    /** --heartbeat-grace-ms override; < 0 = use the policy value. */
    double heartbeatGraceMsOverride = -1.0;

    /** How long after the sweep settles to keep waiting for zombie
     *  attempts to finish (their results are fence-checked, then
     *  rescued or rejected) before force-killing them. */
    double zombieGraceMs = 250.0;

    /** @{ chaos injection: force-kill job killJobId's first attempt
     *  once its heartbeat reaches killAtSimMs simulated ms.  The
     *  threshold is simulated time, so a ring checkpoint (cadence
     *  checkpointEveryMs < killAtSimMs) provably exists before the
     *  kill — no wall-clock races.  Needs a kill-capable transport
     *  (process or ssh). */
    std::string killJobId;
    double killAtSimMs = 0.0;
    /** @} */

    /** Graceful fleet stop (vip_fleet's own SIGINT/SIGTERM flag):
     *  workers are interrupted, the loop drains, the report still
     *  gets written. */
    const std::atomic<int> *stopFlag = nullptr;

    /** Supervisor poll cadence, wall ms. */
    double pollMs = 10.0;

    /** Live-status cadence (--status-interval-ms): how often the
     *  rolling <outDir>/fleet-status.json snapshot is rewritten
     *  (atomic tmp+rename, so a concurrent reader never sees a torn
     *  file).  <= 0 disables the periodic write; the final snapshot
     *  (final: true) is always written. */
    double statusIntervalMs = 500.0;

    bool verbose = true;
};

/** Per-host rollup for the report. */
struct HostReport
{
    std::string name;
    std::string transport;
    int slots = 0;
    std::string state; ///< healthy | quarantined | dead
    int quarantines = 0;
    long opFailures = 0;
    std::size_t jobsDone = 0;
    std::string lastError;
    bool faulty = false; ///< fault injection was active
    long faultsInjected = 0;
};

/** What a finished sweep looked like. */
struct FleetOutcome
{
    bool interrupted = false;   ///< stopFlag fired mid-sweep
    std::string fatal;          ///< terminal error ("" = none)
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t retries = 0;    ///< attempts beyond each job's first
    std::size_t resumes = 0;    ///< attempts restored from a ring
    std::size_t hangKills = 0;  ///< liveness-watchdog kills
    long leaseExpiries = 0;     ///< attempts reassigned off dead leases
    long zombieRejects = 0;     ///< stale-token artifact sets refused
    long zombieRescues = 0;     ///< post-expiry results still accepted
    int hostsQuarantined = 0;   ///< quarantine entries over the sweep
    int hostsDead = 0;
    std::string reportPath;     ///< merged report (<outDir>/report.json)
    std::vector<JobProgress> jobs;
    std::vector<HostReport> hosts;

    /** 0 all done; 1 completed with failed_jobs; 2 interrupted or
     *  terminal (every host lost). */
    int exitCode() const
    {
        if (interrupted || !fatal.empty())
            return 2;
        return failed == 0 ? 0 : 1;
    }
};

/**
 * The vip_sim argv (argv[0] excluded) for one attempt of @p job.
 * All artifact paths are *attempt-relative* (stats.json, metrics.csv,
 * digest.dig, pm/) — the transport decides the working directory, so
 * the same argv runs locally or on any remote host.  Identical flags
 * on every attempt and on reference reruns, because checkpoint
 * identity covers the metrics interval and audit spec.  Restore is
 * appended by the transport (it stages the checkpoint).  Exposed for
 * tests.
 */
std::vector<std::string> workerArgs(const JobSpec &spec,
                                    const FleetJob &job);

class FleetSupervisor
{
  public:
    FleetSupervisor(JobSpec spec, FleetOptions opt);
    ~FleetSupervisor(); ///< out-of-line: Slot is complete in the .cc

    /** Run the sweep to completion (or until stopFlag, or until the
     *  last host dies) and write the merged report.  SimFatal only
     *  on setup errors (bad outDir, missing worker binary, bad hosts
     *  file) — job failures and lost hosts never throw. */
    FleetOutcome run();

  private:
    struct HostRuntime;
    struct Slot;
    struct Zombie;

    void buildHosts();
    bool hostUsable(std::size_t hostIdx) const;
    void hostOpFailure(std::size_t hostIdx, double nowMs,
                       const std::string &detail);
    void probeQuarantined(double nowMs);
    void launch(Slot &slot, std::size_t jobIdx, double nowMs);
    void pollSlot(Slot &slot, double nowMs);
    void expireLease(Slot &slot, double nowMs);
    void tryFetch(Slot &slot, double nowMs);
    void settleAttempt(Slot &slot, double nowMs,
                       const ArtifactManifest &m);
    bool commitArtifacts(const std::string &jobId,
                         const std::string &aDir,
                         const ArtifactManifest &m, bool success,
                         int attempt, std::string *err);
    void pollZombies(double nowMs);
    void killZombies();
    void interruptAll();
    void writeReport(const FleetOutcome &out) const;
    void note(const std::string &line) const;
    /** Rewrite <outDir>/fleet-status.json (atomic).  @p final marks
     *  the post-sweep snapshot. */
    void writeStatus(double nowMs, bool final);

    JobSpec _spec;
    FleetOptions _opt;
    FleetScheduler _sched;
    std::vector<HostRuntime> _hosts;
    std::vector<Slot> _slots;
    std::vector<Zombie> _zombies;
    bool _chaosFired = false;
    std::size_t _retries = 0;
    std::size_t _resumes = 0;
    std::size_t _hangKills = 0;
    int _quarantineEvents = 0;
    std::string _fatal;
    FleetJournal _journal;
    double _lastStatusMs = -1e300;
    /** Per-job steady-state detection tick (simulated ms) parsed
     *  from the committed stats.json's sim.steady.tick; -1 while
     *  unknown/undetected.  Sized lazily against _sched.jobs(). */
    std::vector<double> _jobSteadyTickMs;
};

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_SUPERVISOR_HH
