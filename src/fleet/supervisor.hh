/**
 * @file
 * FleetSupervisor: the crash-surviving sweep orchestrator behind
 * `vip_fleet`.
 *
 * The supervisor expands a JobSpec across N workers, watches each
 * worker's liveness, and drives the FleetScheduler's retry/backoff
 * state machine:
 *
 *  - every worker streams a metrics CSV (its *heartbeat*): the last
 *    row's tick_ms is the shard's simulated progress, and a file that
 *    stops growing for heartbeatDeadlineMs of wall time means the
 *    worker is hung and gets killed;
 *  - a worker that exits nonzero or dies on a signal is a failure;
 *    the shard retries after exponential backoff, resuming from the
 *    newest flight-recorder ring checkpoint when one exists (the
 *    supervisor threads --postmortem-dir and --checkpoint-every-ms
 *    into every worker, so killed shards always leave one);
 *  - jobs that exhaust their attempt cap land in the merged report's
 *    failed_jobs section — the sweep completes regardless.
 *
 * Two worker backends share the loop: Process (fork/exec of vip_sim,
 * the default — full crash isolation, SIGKILL-able) and Thread
 * (in-process Simulation per worker, enabled by the library's
 * run-state isolation; cancellation uses the graceful-interrupt flag
 * instead of signals).  Chaos injection (--kill <job>@<sim-ms>)
 * SIGKILLs a named job's first attempt once its heartbeat crosses a
 * simulated-time threshold — deterministic enough for CI to assert
 * that the recovered shard's stats are bit-identical to an
 * uninterrupted run.
 */

#ifndef VIP_FLEET_SUPERVISOR_HH
#define VIP_FLEET_SUPERVISOR_HH

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "fleet/job_spec.hh"
#include "fleet/scheduler.hh"

namespace vip
{
namespace fleet
{

enum class WorkerMode
{
    Process, ///< fork/exec vip_sim per attempt (crash isolation)
    Thread,  ///< run Simulation on a thread per attempt (in-process)
};

const char *workerModeName(WorkerMode m);

/** Where one job's artifacts live: <outDir>/shards/<jobId>/... */
struct ShardPaths
{
    std::string dir;        ///< the shard directory
    std::string statsJson;  ///< --stats-out dump
    std::string metricsCsv; ///< heartbeat stream
    std::string pmDir;      ///< --postmortem-dir (checkpoint ring)
    std::string checkpoint; ///< <pmDir>/checkpoint.vips
    std::string digest;     ///< --digest-out stream (policy.digests)
    std::string log;        ///< worker stdout+stderr (process mode)
};

ShardPaths shardPaths(const std::string &outDir,
                      const std::string &jobId);

/** Everything run() needs beyond the spec itself. */
struct FleetOptions
{
    std::string outDir;     ///< report + shard tree root
    std::string vipSimPath; ///< worker binary (process mode)
    WorkerMode mode = WorkerMode::Process;

    /** @{ chaos injection: SIGKILL job killJobId's first attempt
     *  once its heartbeat reaches killAtSimMs simulated ms.  The
     *  threshold is simulated time, so a ring checkpoint (cadence
     *  checkpointEveryMs < killAtSimMs) provably exists before the
     *  kill — no wall-clock races.  Process mode only. */
    std::string killJobId;
    double killAtSimMs = 0.0;
    /** @} */

    /** Graceful fleet stop (vip_fleet's own SIGINT/SIGTERM flag):
     *  workers are interrupted, the loop drains, the report still
     *  gets written. */
    const std::atomic<int> *stopFlag = nullptr;

    /** Supervisor poll cadence, wall ms. */
    double pollMs = 10.0;

    bool verbose = true;
};

/** What a finished sweep looked like. */
struct FleetOutcome
{
    bool interrupted = false;   ///< stopFlag fired mid-sweep
    std::size_t done = 0;
    std::size_t failed = 0;
    std::size_t retries = 0;    ///< attempts beyond each job's first
    std::size_t resumes = 0;    ///< attempts restored from a ring
    std::size_t hangKills = 0;  ///< liveness-watchdog kills
    std::string reportPath;     ///< merged report (<outDir>/report.json)
    std::vector<JobProgress> jobs;

    /** 0 all done; 1 completed with failed_jobs; 2 interrupted. */
    int exitCode() const
    {
        if (interrupted)
            return 2;
        return failed == 0 ? 0 : 1;
    }
};

/**
 * The vip_sim argv (argv[0] excluded) for one attempt of @p job —
 * identical flags on every attempt and on reference reruns, because
 * checkpoint identity covers the metrics interval and audit spec.
 * @p resume appends --restore <ring checkpoint>.  Exposed for tests.
 */
std::vector<std::string> workerArgs(const JobSpec &spec,
                                    const FleetJob &job,
                                    const ShardPaths &paths,
                                    bool resume);

class FleetSupervisor
{
  public:
    FleetSupervisor(JobSpec spec, FleetOptions opt);
    ~FleetSupervisor(); ///< out-of-line: Slot is complete in the .cc

    /** Run the sweep to completion (or until stopFlag) and write the
     *  merged report.  SimFatal only on setup errors (bad outDir,
     *  missing worker binary) — job failures never throw. */
    FleetOutcome run();

  private:
    struct Slot;

    void launch(Slot &slot, std::size_t jobIdx, double nowMs);
    void poll(Slot &slot, double nowMs);
    void finish(Slot &slot, double nowMs, bool ok,
                const std::string &why);
    void interruptAll();
    void writeReport(const FleetOutcome &out) const;
    void note(const std::string &line) const;

    JobSpec _spec;
    FleetOptions _opt;
    FleetScheduler _sched;
    std::vector<Slot> _slots;
    bool _chaosFired = false;
    std::size_t _retries = 0;
    std::size_t _resumes = 0;
    std::size_t _hangKills = 0;
};

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_SUPERVISOR_HH
