#include "fleet/transport/subprocess.hh"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace vip
{
namespace fleet
{

std::string
shellQuote(const std::string &s)
{
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out.push_back(c);
    }
    out += "'";
    return out;
}

RunResult
runCapture(const std::vector<std::string> &argv,
           const std::string &stdinFile, double timeoutMs,
           std::size_t maxOutBytes)
{
    RunResult r;
    if (argv.empty()) {
        r.error = "empty argv";
        return r;
    }

    int outPipe[2];
    if (::pipe(outPipe) != 0) {
        r.error = std::string("pipe: ") + std::strerror(errno);
        return r;
    }
    const int inFd =
        ::open(stdinFile.empty() ? "/dev/null" : stdinFile.c_str(),
               O_RDONLY);
    if (inFd < 0) {
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        r.error = "cannot open stdin file " + stdinFile + ": " +
                  std::strerror(errno);
        return r;
    }

    std::vector<char *> cargv;
    cargv.reserve(argv.size() + 1);
    for (const auto &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        ::close(inFd);
        r.error = std::string("fork: ") + std::strerror(errno);
        return r;
    }
    if (pid == 0) {
        ::dup2(inFd, 0);
        ::dup2(outPipe[1], 1);
        ::dup2(outPipe[1], 2);
        ::close(inFd);
        ::close(outPipe[0]);
        ::close(outPipe[1]);
        ::execvp(cargv[0], cargv.data());
        ::_exit(127);
    }
    ::close(outPipe[1]);
    ::close(inFd);
    r.started = true;

    const auto t0 = std::chrono::steady_clock::now();
    auto leftMs = [&]() {
        const double spent =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        return timeoutMs - spent;
    };

    char buf[1 << 14];
    bool open = true;
    while (open) {
        const double left = leftMs();
        if (left <= 0.0) {
            r.timedOut = true;
            ::kill(pid, SIGKILL);
            break;
        }
        struct pollfd pfd = {outPipe[0], POLLIN, 0};
        const int pr = ::poll(
            &pfd, 1,
            static_cast<int>(left < 100.0 ? (left < 1 ? 1 : left)
                                          : 100.0));
        if (pr < 0 && errno != EINTR) {
            r.error = std::string("poll: ") + std::strerror(errno);
            ::kill(pid, SIGKILL);
            break;
        }
        if (pr <= 0)
            continue;
        const ssize_t n = ::read(outPipe[0], buf, sizeof(buf));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            r.error = std::string("read: ") + std::strerror(errno);
            ::kill(pid, SIGKILL);
            break;
        }
        if (n == 0) {
            open = false;
            break;
        }
        if (r.out.size() < maxOutBytes)
            r.out.append(buf,
                         buf + std::min<std::size_t>(
                                   static_cast<std::size_t>(n),
                                   maxOutBytes - r.out.size()));
    }
    ::close(outPipe[0]);

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (WIFSIGNALED(status))
        r.termSignal = WTERMSIG(status);
    else if (WIFEXITED(status))
        r.exitCode = WEXITSTATUS(status);
    return r;
}

} // namespace fleet
} // namespace vip
