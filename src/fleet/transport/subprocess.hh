/**
 * @file
 * Bounded subprocess execution for transports: run a command, feed
 * it a file on stdin, capture stdout(+stderr), and SIGKILL it on
 * timeout.  Every remote-transport network op goes through this, so
 * a wedged ssh can never hang the supervisor loop forever.
 */

#ifndef VIP_FLEET_TRANSPORT_SUBPROCESS_HH
#define VIP_FLEET_TRANSPORT_SUBPROCESS_HH

#include <string>
#include <vector>

namespace vip
{
namespace fleet
{

struct RunResult
{
    bool started = false; ///< fork/exec reached the child
    bool timedOut = false;
    int exitCode = -1;  ///< when exited normally
    int termSignal = 0; ///< when signaled (timeout => SIGKILL)
    std::string out;    ///< captured stdout+stderr (bounded)
    std::string error;  ///< launch-level failure detail

    bool ok() const
    {
        return started && !timedOut && termSignal == 0 &&
               exitCode == 0;
    }
};

/**
 * Run @p argv to completion (or @p timeoutMs of wall time, then
 * SIGKILL).  @p stdinFile ("" = /dev/null) is fed to the child's
 * stdin; stdout and stderr are captured into RunResult::out, capped
 * at @p maxOutBytes (excess is discarded, never blocking the child).
 */
RunResult runCapture(const std::vector<std::string> &argv,
                     const std::string &stdinFile, double timeoutMs,
                     std::size_t maxOutBytes = 16u << 20);

/** Single-quote @p s for a POSIX shell (remote command assembly). */
std::string shellQuote(const std::string &s);

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_TRANSPORT_SUBPROCESS_HH
