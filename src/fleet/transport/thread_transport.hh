/**
 * @file
 * ThreadTransport: one in-process Simulation per attempt, enabled by
 * the library's run-state isolation (tests/test_isolation.cc proves
 * concurrent in-process runs are bit-identical to solo runs).  The
 * worker body mirrors vip_sim's flag semantics exactly — same
 * outputs, same digest-visible side effects — so a thread-mode shard
 * is byte-identical to a process-mode one.  Cancellation uses the
 * graceful-interrupt flag: there is no safe way to kill a thread, so
 * forceKill degrades to a graceful cancel.
 */

#ifndef VIP_FLEET_TRANSPORT_THREAD_TRANSPORT_HH
#define VIP_FLEET_TRANSPORT_THREAD_TRANSPORT_HH

#include "fleet/transport/transport.hh"

namespace vip
{
namespace fleet
{

class ThreadTransport : public WorkerTransport
{
  public:
    const char *kind() const override { return "thread"; }
    std::unique_ptr<WorkerHandle> launch(const LaunchRequest &req,
                                         std::string *err) override;
    PollResult poll(WorkerHandle &h) override;
    bool heartbeat(WorkerHandle &h, HeartbeatInfo *info,
                   std::string *err) override;
    void interrupt(WorkerHandle &h) override;
    void forceKill(WorkerHandle &h) override;
    bool fetch(WorkerHandle &h, ArtifactManifest *out,
               std::string *err) override;
    bool probe(std::string *err) override;
};

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_TRANSPORT_THREAD_TRANSPORT_HH
