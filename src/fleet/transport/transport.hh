/**
 * @file
 * WorkerTransport: the narrow seam between the fleet supervisor and
 * wherever a worker actually runs.
 *
 * The supervisor never fork/execs, ssh-es, or stats a file directly;
 * it speaks this interface and nothing else.  Implementations:
 *
 *  - LocalTransport   fork/exec of vip_sim on this machine;
 *  - ThreadTransport  an in-process Simulation per attempt;
 *  - RemoteTransport  vip_sim on a remote host over ssh exec, with
 *                     stage-out/fetch-back and FNV-1a verification;
 *  - FaultyTransport  a deterministic fault-injection decorator
 *                     (drop/delay/duplicate/corrupt/partition/die)
 *                     wrapping any of the above, so the partition-
 *                     tolerance machinery is testable hermetically.
 *
 * Every attempt runs inside its own *attempt directory* and writes
 * artifacts under fixed relative names (below).  That buys two
 * things: worker argv is host-independent (the transport decides the
 * working directory), and concurrent attempts of the same job — a
 * live retry plus a not-yet-dead zombie from a partitioned host —
 * can never clobber each other.  Only the supervisor, after checking
 * the attempt's fencing token, copies artifacts from an attempt
 * directory to the canonical shard paths.
 *
 * Ops that cross a network (or pretend to) report transport-level
 * failure distinctly from worker failure: a worker exiting 1 is a
 * *job* problem; launch/poll/heartbeat/fetch/probe erroring is a
 * *host* problem and feeds the health scorer.
 */

#ifndef VIP_FLEET_TRANSPORT_TRANSPORT_HH
#define VIP_FLEET_TRANSPORT_TRANSPORT_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fleet/transport/artifact.hh"

namespace vip
{
namespace fleet
{

struct JobSpec;
struct FleetJob;

/** Fixed attempt-relative artifact names every transport agrees on. */
namespace attempt_files
{
constexpr const char *kStats = "stats.json";
constexpr const char *kMetrics = "metrics.csv";
constexpr const char *kSeries = "series.json";
constexpr const char *kDigest = "digest.dig";
constexpr const char *kLog = "log.txt";
constexpr const char *kPmDir = "pm";
constexpr const char *kCheckpoint = "pm/checkpoint.vips";
constexpr const char *kRestore = "restore.vips";
} // namespace attempt_files

/** Everything a transport needs to start one attempt of one job. */
struct LaunchRequest
{
    std::string jobId;
    std::uint64_t token = 0; ///< fencing token of this attempt
    /** Local staging directory for this attempt (created by the
     *  supervisor).  Local/thread workers run here; remote workers
     *  mirror into it at fetch time. */
    std::string attemptDir;
    /** vip_sim argv tail with attempt-relative artifact paths. */
    std::vector<std::string> args;
    /** Local checkpoint to restore from (staged to the worker as
     *  attempt_files::kRestore); "" = fresh run. */
    std::string restoreFrom;
    /** @{ thread transport runs the simulation straight from these
     *  instead of re-parsing argv. */
    const JobSpec *spec = nullptr;
    const FleetJob *job = nullptr;
    /** @} */
};

enum class WorkerState
{
    Running,     ///< attempt alive as far as the transport can tell
    Exited,      ///< attempt finished (see ok/exitCode/termSignal)
    Unreachable, ///< transport-level failure: cannot observe worker
};

struct PollResult
{
    WorkerState state = WorkerState::Unreachable;
    bool ok = false;    ///< Exited: clean success
    int exitCode = -1;  ///< Exited && !signal
    int termSignal = 0; ///< Exited on a signal
    std::string error;  ///< failure / unreachability detail
};

/** One heartbeat observation (all fields best-effort). */
struct HeartbeatInfo
{
    long size = -1;       ///< metrics CSV bytes; -1 = no file yet
    double tickMs = -1.0; ///< newest simulated tick; -1 = unknown
    /** Steady-clock wall ms (steadyWallMs()) when the observation
     *  was actually taken — a cached remote observation keeps its
     *  original stamp, so rate math (Δtick/Δwall) stays honest. */
    double wallMs = -1.0;
};

/** Monotonic wall-clock milliseconds (process-wide steady epoch);
 *  the time base every HeartbeatInfo::wallMs stamp uses. */
double steadyWallMs();

/** Opaque per-attempt state owned by the caller, implemented per
 *  transport.  Destruction must reap/cancel any live worker (last-
 *  resort cleanup, not subject to fault injection). */
class WorkerHandle
{
  public:
    virtual ~WorkerHandle() = default;
};

class WorkerTransport
{
  public:
    virtual ~WorkerTransport() = default;

    virtual const char *kind() const = 0;

    /** Start one attempt.  nullptr + *err on transport failure (the
     *  worker never started; the claim can be released without
     *  burning an attempt — no zombie is possible). */
    virtual std::unique_ptr<WorkerHandle>
    launch(const LaunchRequest &req, std::string *err) = 0;

    /** Observe the attempt.  Never blocks. */
    virtual PollResult poll(WorkerHandle &h) = 0;

    /** Observe the heartbeat stream.  False + *err on transport
     *  failure; a missing metrics file is NOT a failure (info.size
     *  stays -1).  Remote transports may serve throttled/cached
     *  observations. */
    virtual bool heartbeat(WorkerHandle &h, HeartbeatInfo *info,
                           std::string *err) = 0;

    /** Request a graceful stop (SIGTERM / interrupt flag). */
    virtual void interrupt(WorkerHandle &h) = 0;

    /** Hard-kill the attempt (SIGKILL where possible). */
    virtual void forceKill(WorkerHandle &h) = 0;

    /**
     * Pull the attempt's artifacts into its local attemptDir and
     * checksum them at the source (FNV-1a).  Artifacts the attempt
     * did not produce are reported with present = false.  False +
     * *err on transport failure; the caller retries with backoff.
     */
    virtual bool fetch(WorkerHandle &h, ArtifactManifest *out,
                       std::string *err) = 0;

    /** Cheap liveness check of the host itself — the re-admission
     *  probe for quarantined hosts. */
    virtual bool probe(std::string *err) = 0;
};

/** The artifact names fetch() must account for (checkpoint included:
 *  crashed shards resume from it, possibly on another host). */
const std::vector<std::string> &attemptArtifactNames();

/** Scan @p attemptDir and build a checksummed manifest of the
 *  standard artifacts — the whole fetch, for local transports. */
bool localManifest(const std::string &attemptDir,
                   ArtifactManifest *out, std::string *err);

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_TRANSPORT_TRANSPORT_HH
