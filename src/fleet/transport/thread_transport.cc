#include "fleet/transport/thread_transport.hh"

#include <signal.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>

#include "core/simulation.hh"
#include "fault/fault_plan.hh"
#include "fleet/job_spec.hh"
#include "fleet/transport/local_transport.hh"
#include "obs/provenance.hh"
#include "sim/audit.hh"
#include "sim/logging.hh"

namespace fs = std::filesystem;

namespace vip
{
namespace fleet
{

namespace
{

/**
 * One in-process attempt's shared state.  The worker thread writes
 * ok/error, then publishes with a release store of finished; the
 * supervisor joins after an acquire load, so the plain fields are
 * safely visible.
 */
struct ThreadHandle : WorkerHandle
{
    std::thread thread;
    std::atomic<int> cancel{0}; ///< the job's interrupt flag
    std::atomic<bool> finished{false};
    bool ok = false;
    std::string error;
    std::string attemptDir;
    bool joined = false;

    ~ThreadHandle() override
    {
        // Last-resort cleanup: request a graceful stop and wait (the
        // simulator always reaches a quiescent point unless the
        // whole process is wedged).
        if (thread.joinable()) {
            cancel.store(SIGTERM, std::memory_order_relaxed);
            thread.join();
        }
    }
};

/** Mirrors vip_sim's flag semantics exactly (same outputs, same
 *  digest-visible side effects). */
void
runThreadAttempt(double seconds, std::string audit, FleetPolicy pol,
                 FleetJob job, std::string attemptDir,
                 std::string restoreFrom, ThreadHandle *task)
{
    try {
        SocConfig cfg;
        cfg.simSeconds = seconds;
        cfg.seed = job.seed;
        cfg.system = configByCliName(job.config);
        if (!job.faultPlan.empty())
            cfg.fault = FaultPlan::parse(job.faultPlan);
        if (!audit.empty())
            cfg.audit = AuditConfig::parse(audit);
        if (pol.digests && !cfg.audit.enabled())
            cfg.audit = AuditConfig::parse("periodic:1");
        const std::string statsPath =
            attemptDir + "/" + attempt_files::kStats;
        const std::string digestPath =
            attemptDir + "/" + attempt_files::kDigest;
        if (pol.heartbeatIntervalMs > 0.0) {
            cfg.metrics.out =
                attemptDir + "/" + attempt_files::kMetrics;
            cfg.metrics.intervalMs = pol.heartbeatIntervalMs;
        }
        cfg.statsOut = statsPath;
        cfg.postmortemDir = attemptDir + "/" + attempt_files::kPmDir;
        if (pol.checkpointEveryMs > 0.0)
            cfg.checkpointEveryMs = pol.checkpointEveryMs;
        if (!restoreFrom.empty())
            cfg.restorePath = restoreFrom;
        cfg.interruptFlag = &task->cancel;

        Simulation sim(cfg, workloadByName(job.workload));
        RunStats s = sim.run();

        {
            std::ofstream out(statsPath);
            if (!out)
                fatal("cannot write ", statsPath);
            sim.writeStatsJson(out);
        }
        if (pol.digests) {
            std::ofstream out(digestPath);
            if (!out)
                fatal("cannot write ", digestPath);
            std::vector<std::string> meta{
                "workload=" + job.workload, "config=" + job.config,
                "seed=" + std::to_string(cfg.seed)};
            for (const auto &l : provenanceMetaLines())
                meta.push_back(l);
            sim.auditor().writeDigestStream(out, meta);
        }

        if (sim.interrupted()) {
            task->error = "interrupted (graceful cancel, signal " +
                          std::to_string(sim.interruptSignal()) + ")";
        } else if (s.auditViolations > 0) {
            task->error = "audit violations: " +
                          std::to_string(s.auditViolations);
        } else {
            task->ok = true;
        }
    } catch (const std::exception &e) {
        task->error = std::string("exception: ") + e.what();
    } catch (...) {
        task->error = "unknown exception";
    }
    task->finished.store(true, std::memory_order_release);
}

} // namespace

std::unique_ptr<WorkerHandle>
ThreadTransport::launch(const LaunchRequest &req, std::string *err)
{
    if (!req.spec || !req.job) {
        if (err)
            *err = "thread transport needs spec/job in the request";
        return nullptr;
    }
    std::error_code ec;
    fs::create_directories(req.attemptDir + "/" +
                               attempt_files::kPmDir,
                           ec);
    if (ec) {
        if (err)
            *err = "cannot create " + req.attemptDir + ": " +
                   ec.message();
        return nullptr;
    }
    auto h = std::make_unique<ThreadHandle>();
    h->attemptDir = req.attemptDir;
    h->thread = std::thread(runThreadAttempt, req.spec->seconds,
                            req.spec->audit, req.spec->fleet,
                            *req.job, req.attemptDir,
                            req.restoreFrom, h.get());
    return h;
}

PollResult
ThreadTransport::poll(WorkerHandle &wh)
{
    auto &h = static_cast<ThreadHandle &>(wh);
    PollResult pr;
    if (!h.finished.load(std::memory_order_acquire)) {
        pr.state = WorkerState::Running;
        return pr;
    }
    if (!h.joined) {
        h.thread.join();
        h.joined = true;
    }
    pr.state = WorkerState::Exited;
    pr.ok = h.ok;
    pr.exitCode = h.ok ? 0 : 1;
    pr.error = h.ok ? "" : (h.error.empty() ? "failed" : h.error);
    return pr;
}

bool
ThreadTransport::heartbeat(WorkerHandle &wh, HeartbeatInfo *info,
                           std::string *err)
{
    (void)err;
    auto &h = static_cast<ThreadHandle &>(wh);
    const std::string csv =
        h.attemptDir + "/" + attempt_files::kMetrics;
    info->size = statFileSize(csv);
    info->tickMs = info->size > 0 ? readLastTickMs(csv) : -1.0;
    info->wallMs = steadyWallMs();
    return true;
}

void
ThreadTransport::interrupt(WorkerHandle &wh)
{
    static_cast<ThreadHandle &>(wh).cancel.store(
        SIGTERM, std::memory_order_relaxed);
}

void
ThreadTransport::forceKill(WorkerHandle &wh)
{
    // No safe way to kill a thread: graceful cancel is the best a
    // thread backend can do.
    interrupt(wh);
}

bool
ThreadTransport::fetch(WorkerHandle &wh, ArtifactManifest *out,
                       std::string *err)
{
    auto &h = static_cast<ThreadHandle &>(wh);
    return localManifest(h.attemptDir, out, err);
}

bool
ThreadTransport::probe(std::string *err)
{
    (void)err;
    return true;
}

} // namespace fleet
} // namespace vip
