#include "fleet/transport/faulty_transport.hh"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

namespace vip
{
namespace fleet
{

namespace
{

double
wallMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** splitmix64: a full-period mix of (seed, op) into one draw. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

double
unitDraw(std::uint64_t seed, std::uint64_t op,
         std::uint64_t stream)
{
    const std::uint64_t h =
        mix64(mix64(seed ^ (stream * 0x100000001b3ull)) + op);
    return static_cast<double>(h >> 11) *
           (1.0 / 9007199254740992.0); // 2^-53
}

bool
parseNum(const std::string &s, double *out)
{
    char *end = nullptr;
    *out = std::strtod(s.c_str(), &end);
    return end && *end == '\0' && end != s.c_str();
}

} // namespace

bool
FaultSpec::parse(const std::string &s, FaultSpec *out,
                 std::string *err)
{
    *out = FaultSpec{};
    std::size_t pos = 0;
    while (pos < s.size()) {
        std::size_t comma = s.find(',', pos);
        if (comma == std::string::npos)
            comma = s.size();
        const std::string tok = s.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;

        auto bad = [&](const std::string &why) {
            if (err)
                *err = "fault spec token '" + tok + "': " + why;
            return false;
        };
        auto window = [&](const std::string &v, double *at,
                          double *len) {
            const std::size_t plus = v.find('+');
            if (plus == std::string::npos)
                return false;
            double a = 0, l = 0;
            if (!parseNum(v.substr(0, plus), &a) ||
                !parseNum(v.substr(plus + 1), &l) || a < 0 || l <= 0)
                return false;
            *at = a;
            *len = l;
            return true;
        };

        const std::size_t at = tok.find('@');
        const std::size_t eq = tok.find('=');
        if (at != std::string::npos &&
            (eq == std::string::npos || at < eq)) {
            const std::string key = tok.substr(0, at);
            const std::string val = tok.substr(at + 1);
            if (key == "die") {
                double n = 0;
                if (!parseNum(val, &n) || n < 0)
                    return bad("expected die@<op>");
                out->dieAtOp = static_cast<long>(n);
            } else if (key == "partition") {
                double a = 0, l = 0;
                if (!window(val, &a, &l))
                    return bad("expected partition@<op>+<ops>");
                out->partitionAtOp = static_cast<long>(a);
                out->partitionOps = static_cast<long>(l);
            } else {
                return bad("unknown key");
            }
            continue;
        }
        if (eq == std::string::npos)
            return bad("expected key=value or key@value");
        const std::string key = tok.substr(0, eq);
        const std::string val = tok.substr(eq + 1);
        double n = 0;
        if (key == "seed") {
            if (!parseNum(val, &n) || n < 0)
                return bad("expected seed=<n>");
            out->seed = static_cast<std::uint64_t>(n);
        } else if (key == "drop" || key == "delay" ||
                   key == "dup" || key == "corrupt") {
            if (!parseNum(val, &n) || n < 0.0 || n > 1.0)
                return bad("expected a probability in [0,1]");
            if (key == "drop")
                out->drop = n;
            else if (key == "delay")
                out->delay = n;
            else if (key == "dup")
                out->dup = n;
            else
                out->corrupt = n;
        } else if (key == "dieMs") {
            if (!parseNum(val, &n) || n < 0)
                return bad("expected dieMs=<ms>");
            out->dieAtMs = n;
        } else if (key == "partitionMs") {
            if (!window(val, &out->partitionAtMs,
                        &out->partitionMs))
                return bad("expected partitionMs=<start>+<len>");
        } else {
            return bad("unknown key");
        }
    }
    return true;
}

/** Wraps the inner handle and deregisters itself on destruction so
 *  the die fault only ever signals handles that are still alive. */
struct FaultyTransport::Handle : WorkerHandle
{
    std::unique_ptr<WorkerHandle> inner;
    FaultyTransport *owner = nullptr;

    ~Handle() override
    {
        if (owner) {
            auto &v = owner->_live;
            v.erase(std::remove(v.begin(), v.end(), this), v.end());
        }
    }
};

FaultyTransport::FaultyTransport(
    std::unique_ptr<WorkerTransport> inner, FaultSpec spec)
    : _inner(std::move(inner)), _spec(spec),
      _kind(std::string("faulty+") + _inner->kind()),
      _t0Ms(wallMs())
{
}

FaultyTransport::~FaultyTransport()
{
    for (Handle *h : _live)
        h->owner = nullptr;
}

const char *
FaultyTransport::kind() const
{
    return _kind.c_str();
}

FaultyTransport::Verdict
FaultyTransport::nextOp(bool probabilistic, bool fetchOp)
{
    const long op = _counters.ops++;
    const double elapsed = wallMs() - _t0Ms;
    Verdict v;

    if ((_spec.dieAtOp >= 0 && op >= _spec.dieAtOp) ||
        (_spec.dieAtMs >= 0.0 && elapsed >= _spec.dieAtMs)) {
        v.dead = true;
        _counters.died = true;
        killAllOnce();
        return v;
    }
    if ((_spec.partitionAtOp >= 0 && op >= _spec.partitionAtOp &&
         op < _spec.partitionAtOp + _spec.partitionOps) ||
        (_spec.partitionAtMs >= 0.0 &&
         elapsed >= _spec.partitionAtMs &&
         elapsed < _spec.partitionAtMs + _spec.partitionMs)) {
        v.partitioned = true;
        ++_counters.partitioned;
        return v;
    }
    if (!probabilistic)
        return v;

    const auto uop = static_cast<std::uint64_t>(op);
    double u = unitDraw(_spec.seed, uop, 1);
    if (u < _spec.drop) {
        v.drop = true;
        ++_counters.drops;
        return v; // drop preempts the milder faults
    }
    if (unitDraw(_spec.seed, uop, 2) < _spec.delay) {
        v.delay = true;
        ++_counters.delays;
    }
    if (unitDraw(_spec.seed, uop, 3) < _spec.dup) {
        v.dup = true;
        ++_counters.dups;
    }
    if (fetchOp && unitDraw(_spec.seed, uop, 4) < _spec.corrupt) {
        v.corrupt = true;
        ++_counters.corrupts;
    }
    return v;
}

void
FaultyTransport::killAllOnce()
{
    if (_killed)
        return;
    _killed = true;
    for (Handle *h : _live)
        if (h->inner)
            _inner->forceKill(*h->inner);
}

std::unique_ptr<WorkerHandle>
FaultyTransport::launch(const LaunchRequest &req, std::string *err)
{
    const Verdict v = nextOp(false, false);
    if (v.dead || v.partitioned) {
        if (err)
            *err = v.dead ? "injected fault: host dead"
                          : "injected fault: partitioned";
        return nullptr;
    }
    auto inner = _inner->launch(req, err);
    if (!inner)
        return nullptr;
    auto h = std::make_unique<Handle>();
    h->inner = std::move(inner);
    h->owner = this;
    _live.push_back(h.get());
    return h;
}

PollResult
FaultyTransport::poll(WorkerHandle &wh)
{
    auto &h = static_cast<Handle &>(wh);
    const Verdict v = nextOp(true, false);
    if (v.dead || v.partitioned || v.drop) {
        PollResult pr;
        pr.state = WorkerState::Unreachable;
        pr.error = v.dead ? "injected fault: host dead"
                 : v.partitioned ? "injected fault: partitioned"
                                 : "injected fault: dropped poll";
        return pr;
    }
    if (v.delay)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (v.dup)
        (void)_inner->poll(*h.inner);
    return _inner->poll(*h.inner);
}

bool
FaultyTransport::heartbeat(WorkerHandle &wh, HeartbeatInfo *info,
                           std::string *err)
{
    auto &h = static_cast<Handle &>(wh);
    const Verdict v = nextOp(true, false);
    if (v.dead || v.partitioned || v.drop) {
        if (err)
            *err = v.dead ? "injected fault: host dead"
                 : v.partitioned ? "injected fault: partitioned"
                                 : "injected fault: dropped heartbeat";
        return false;
    }
    if (v.delay)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (v.dup)
        (void)_inner->heartbeat(*h.inner, info, err);
    return _inner->heartbeat(*h.inner, info, err);
}

void
FaultyTransport::interrupt(WorkerHandle &wh)
{
    // Cleanup ops are never fault-injected (see header).
    auto &h = static_cast<Handle &>(wh);
    _inner->interrupt(*h.inner);
}

void
FaultyTransport::forceKill(WorkerHandle &wh)
{
    auto &h = static_cast<Handle &>(wh);
    _inner->forceKill(*h.inner);
}

bool
FaultyTransport::fetch(WorkerHandle &wh, ArtifactManifest *out,
                       std::string *err)
{
    auto &h = static_cast<Handle &>(wh);
    const Verdict v = nextOp(true, true);
    if (v.dead || v.partitioned || v.drop) {
        if (err)
            *err = v.dead ? "injected fault: host dead"
                 : v.partitioned ? "injected fault: partitioned"
                                 : "injected fault: dropped fetch";
        return false;
    }
    if (v.delay)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (v.dup) {
        ArtifactManifest scratch;
        std::string e;
        (void)_inner->fetch(*h.inner, &scratch, &e);
    }
    if (!_inner->fetch(*h.inner, out, err))
        return false;
    if (v.corrupt) {
        // Lie about one checksum: the supervisor's verified commit
        // must catch it and retry the fetch.
        for (auto &a : *out) {
            if (a.present) {
                a.fnv ^= 0xdeadbeefull;
                break;
            }
        }
    }
    return true;
}

bool
FaultyTransport::probe(std::string *err)
{
    const Verdict v = nextOp(true, false);
    if (v.dead || v.partitioned || v.drop) {
        if (err)
            *err = v.dead ? "injected fault: host dead"
                 : v.partitioned ? "injected fault: partitioned"
                                 : "injected fault: dropped probe";
        return false;
    }
    if (v.delay)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (v.dup)
        (void)_inner->probe(nullptr);
    return _inner->probe(err);
}

} // namespace fleet
} // namespace vip
