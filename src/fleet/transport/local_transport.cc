#include "fleet/transport/local_transport.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

namespace fs = std::filesystem;

namespace vip
{
namespace fleet
{

long
statFileSize(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    return static_cast<long>(st.st_size);
}

/**
 * The shard's simulated progress: the tick_ms column (first field) of
 * the newest non-comment row of its heartbeat CSV, or -1 before the
 * first sample lands.  Heartbeat files are small (hundreds of rows),
 * so rereading on growth is cheap.
 */
double
readLastTickMs(const std::string &metricsCsv)
{
    std::ifstream in(metricsCsv);
    if (!in)
        return -1.0;
    std::string line, last;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const char c = line[0];
        if ((c < '0' || c > '9') && c != '-' && c != '.')
            continue; // the "tick_ms,..." header row
        last = line;
    }
    if (last.empty())
        return -1.0;
    return std::strtod(last.c_str(), nullptr);
}

namespace
{

struct LocalHandle : WorkerHandle
{
    pid_t pid = -1;
    std::string attemptDir;
    bool reaped = false;
    PollResult final; ///< cached once waitpid() reaps the child

    ~LocalHandle() override
    {
        // Last-resort cleanup: never leave an orphan worker running.
        if (pid > 0 && !reaped) {
            ::kill(pid, SIGKILL);
            int status = 0;
            ::waitpid(pid, &status, 0);
        }
    }
};

} // namespace

LocalTransport::LocalTransport(std::string vipSimPath)
    : _vipSim(std::move(vipSimPath))
{
}

std::unique_ptr<WorkerHandle>
LocalTransport::launch(const LaunchRequest &req, std::string *err)
{
    std::error_code ec;
    fs::create_directories(req.attemptDir + "/" +
                               attempt_files::kPmDir,
                           ec);
    if (ec) {
        if (err)
            *err = "cannot create " + req.attemptDir + ": " +
                   ec.message();
        return nullptr;
    }

    std::vector<std::string> args = req.args;
    if (!req.restoreFrom.empty()) {
        // Stage the restore checkpoint in (hard link when possible,
        // else a verified copy), so argv stays attempt-relative.
        const std::string staged =
            req.attemptDir + "/" + attempt_files::kRestore;
        fs::remove(staged, ec);
        fs::create_hard_link(req.restoreFrom, staged, ec);
        if (ec) {
            std::string cerr2;
            bool ok = false;
            const std::uint64_t h = fnv1aFile(req.restoreFrom, &ok);
            if (!ok ||
                !copyFileAtomicVerified(req.restoreFrom, staged, h,
                                        &cerr2)) {
                if (err)
                    *err = "cannot stage restore checkpoint: " +
                           (ok ? cerr2 : "unreadable " +
                                             req.restoreFrom);
                return nullptr;
            }
        }
        args.push_back("--restore");
        args.push_back(attempt_files::kRestore);
    }

    const std::string logPath =
        req.attemptDir + "/" + attempt_files::kLog;
    const int logFd = ::open(logPath.c_str(),
                             O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (logFd < 0) {
        if (err)
            *err = "cannot open " + logPath + ": " +
                   std::strerror(errno);
        return nullptr;
    }

    std::vector<char *> argv;
    argv.push_back(const_cast<char *>(_vipSim.c_str()));
    for (auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(logFd);
        if (err)
            *err = std::string("fork failed: ") +
                   std::strerror(errno);
        return nullptr;
    }
    if (pid == 0) {
        if (::chdir(req.attemptDir.c_str()) != 0)
            ::_exit(126);
        ::dup2(logFd, 1);
        ::dup2(logFd, 2);
        ::close(logFd);
        ::execv(argv[0], argv.data());
        std::fprintf(stderr, "execv %s failed: %s\n", argv[0],
                     std::strerror(errno));
        ::_exit(127);
    }
    ::close(logFd);

    auto h = std::make_unique<LocalHandle>();
    h->pid = pid;
    h->attemptDir = req.attemptDir;
    return h;
}

PollResult
LocalTransport::poll(WorkerHandle &wh)
{
    auto &h = static_cast<LocalHandle &>(wh);
    if (h.reaped)
        return h.final;
    int status = 0;
    const pid_t r = ::waitpid(h.pid, &status, WNOHANG);
    PollResult pr;
    if (r == 0) {
        pr.state = WorkerState::Running;
        return pr;
    }
    if (r != h.pid) {
        pr.state = WorkerState::Unreachable;
        pr.error = std::string("waitpid: ") + std::strerror(errno);
        return pr;
    }
    pr.state = WorkerState::Exited;
    if (WIFSIGNALED(status)) {
        pr.termSignal = WTERMSIG(status);
        pr.error = "killed by signal " +
                   std::to_string(pr.termSignal);
    } else {
        pr.exitCode = WEXITSTATUS(status);
        pr.ok = pr.exitCode == 0;
        if (!pr.ok)
            pr.error = "exit code " + std::to_string(pr.exitCode);
    }
    h.reaped = true;
    h.final = pr;
    return pr;
}

bool
LocalTransport::heartbeat(WorkerHandle &wh, HeartbeatInfo *info,
                          std::string *err)
{
    (void)err;
    auto &h = static_cast<LocalHandle &>(wh);
    const std::string csv =
        h.attemptDir + "/" + attempt_files::kMetrics;
    info->size = statFileSize(csv);
    info->tickMs = info->size > 0 ? readLastTickMs(csv) : -1.0;
    info->wallMs = steadyWallMs();
    return true;
}

void
LocalTransport::interrupt(WorkerHandle &wh)
{
    auto &h = static_cast<LocalHandle &>(wh);
    if (!h.reaped && h.pid > 0)
        ::kill(h.pid, SIGTERM);
}

void
LocalTransport::forceKill(WorkerHandle &wh)
{
    auto &h = static_cast<LocalHandle &>(wh);
    if (!h.reaped && h.pid > 0)
        ::kill(h.pid, SIGKILL);
}

bool
LocalTransport::fetch(WorkerHandle &wh, ArtifactManifest *out,
                      std::string *err)
{
    auto &h = static_cast<LocalHandle &>(wh);
    return localManifest(h.attemptDir, out, err);
}

bool
LocalTransport::probe(std::string *err)
{
    if (::access(_vipSim.c_str(), X_OK) != 0) {
        if (err)
            *err = "worker binary " + _vipSim +
                   " is not executable: " + std::strerror(errno);
        return false;
    }
    return true;
}

} // namespace fleet
} // namespace vip
