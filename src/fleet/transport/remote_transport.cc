#include "fleet/transport/remote_transport.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <thread>

#include "fleet/transport/subprocess.hh"

namespace fs = std::filesystem;

namespace vip
{
namespace fleet
{

namespace
{

double
wallMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** First 16-hex-digit token in @p text (the --fnv1a output), or
 *  false when none parses. */
bool
scanFnvToken(const std::string &text, std::uint64_t *out)
{
    std::size_t i = 0;
    while (i < text.size()) {
        while (i < text.size() &&
               (text[i] == ' ' || text[i] == '\n' ||
                text[i] == '\r' || text[i] == '\t'))
            ++i;
        std::size_t j = i;
        while (j < text.size() && text[j] != ' ' &&
               text[j] != '\n' && text[j] != '\r' &&
               text[j] != '\t')
            ++j;
        if (j - i == 16 && parseFnvHex(text.substr(i, 16), out))
            return true;
        i = j;
    }
    return false;
}

struct RemoteHandle : WorkerHandle
{
    std::string jobId;
    std::string attemptDir;  ///< local mirror
    std::string remoteDir;   ///< remote attempt directory
    pid_t sshPid = -1;       ///< the launched worker's ssh child
    bool reaped = false;
    PollResult final;

    /** @{ throttled heartbeat cache */
    double lastProbeMs = -1.0e18;
    HeartbeatInfo cached;
    bool cachedOk = true;
    std::string cachedErr;
    /** @} */

    ~RemoteHandle() override
    {
        // Last-resort cleanup of the local ssh child; the remote
        // worker (if any survives) is the remote host's orphan
        // reaper's problem.
        if (sshPid > 0 && !reaped) {
            ::kill(sshPid, SIGKILL);
            int status = 0;
            ::waitpid(sshPid, &status, 0);
        }
    }
};

} // namespace

RemoteTransport::RemoteTransport(RemoteHostOptions opt)
    : _opt(std::move(opt))
{
}

/**
 * One bounded remote command with capped-exponential retry.  Retries
 * only transport-shaped failures (timeout, ssh death, exit 255);
 * a clean nonzero exit is the command's own answer and returned
 * as-is.
 */
struct RemoteTransport::Op
{
    const RemoteHostOptions &opt;
    std::string what;

    RunResult
    run(const std::string &remoteCmd, const std::string &stdinFile)
    {
        RunResult r;
        double delay = opt.retryBaseMs;
        for (int attempt = 1;; ++attempt) {
            std::vector<std::string> argv = opt.sshCmd;
            argv.push_back(remoteCmd);
            r = runCapture(argv, stdinFile, opt.opTimeoutMs);
            const bool transportFailure =
                !r.started || r.timedOut || r.termSignal != 0 ||
                r.exitCode == 255;
            if (!transportFailure || attempt >= opt.opRetries)
                return r;
            std::this_thread::sleep_for(
                std::chrono::duration<double, std::milli>(delay));
            delay = std::min(delay * 2.0, opt.retryCapMs);
        }
    }

    std::string
    describe(const RunResult &r) const
    {
        if (!r.started)
            return what + ": " + r.error;
        if (r.timedOut)
            return what + ": timed out";
        if (r.termSignal != 0)
            return what + ": ssh killed by signal " +
                   std::to_string(r.termSignal);
        return what + ": exit " + std::to_string(r.exitCode) +
               (r.out.empty()
                    ? ""
                    : " (" + r.out.substr(0, 160) + ")");
    }
};

std::unique_ptr<WorkerHandle>
RemoteTransport::launch(const LaunchRequest &req, std::string *err)
{
    auto h = std::make_unique<RemoteHandle>();
    h->jobId = req.jobId;
    h->attemptDir = req.attemptDir;
    h->remoteDir = _opt.remoteDir + "/" + req.jobId + "/a" +
                   std::to_string(req.token);

    std::error_code ec;
    fs::create_directories(req.attemptDir + "/" +
                               attempt_files::kPmDir,
                           ec);
    if (ec) {
        if (err)
            *err = "cannot create local " + req.attemptDir + ": " +
                   ec.message();
        return nullptr;
    }

    const std::string rdir = shellQuote(h->remoteDir);
    std::vector<std::string> args = req.args;

    // Stage the restore checkpoint out, checksum-verified.
    if (!req.restoreFrom.empty()) {
        bool ok = false;
        const std::uint64_t want = fnv1aFile(req.restoreFrom, &ok);
        if (!ok) {
            if (err)
                *err = "restore checkpoint " + req.restoreFrom +
                       " is unreadable";
            return nullptr;
        }
        Op stage{_opt, "stage restore checkpoint"};
        const std::string dst =
            h->remoteDir + "/" + attempt_files::kRestore;
        bool staged = false;
        for (int i = 0; i < _opt.opRetries && !staged; ++i) {
            RunResult r = stage.run("mkdir -p " + rdir + "/pm && "
                                    "cat > " + shellQuote(dst),
                                    req.restoreFrom);
            if (!r.ok()) {
                if (err)
                    *err = stage.describe(r);
                continue;
            }
            Op sum{_opt, "verify staged checkpoint"};
            r = sum.run(shellQuote(_opt.vipSim) + " --fnv1a " +
                        shellQuote(dst), "");
            std::uint64_t got = 0;
            if (r.ok() && scanFnvToken(r.out, &got) && got == want) {
                staged = true;
            } else if (err) {
                *err = r.ok() ? "staged checkpoint checksum "
                                "mismatch"
                              : sum.describe(r);
            }
        }
        if (!staged)
            return nullptr;
        args.push_back("--restore");
        args.push_back(attempt_files::kRestore);
    } else {
        Op mk{_opt, "create remote attempt dir"};
        const RunResult r = mk.run("mkdir -p " + rdir + "/pm", "");
        if (!r.ok()) {
            if (err)
                *err = mk.describe(r);
            return nullptr;
        }
    }

    // Launch: the $$ pid lands in a file (exec keeps it), so
    // interrupt/forceKill can signal the remote worker directly.
    std::string cmd = "cd " + rdir + " && echo $$ > pid && exec " +
                      shellQuote(_opt.vipSim);
    for (const auto &a : args)
        cmd += " " + shellQuote(a);
    cmd += " > " + shellQuote(std::string(attempt_files::kLog)) +
           " 2>&1";

    const std::string clientLog = req.attemptDir + "/ssh-client.log";
    const int logFd = ::open(clientLog.c_str(),
                             O_WRONLY | O_CREAT | O_APPEND, 0644);
    std::vector<std::string> argv = _opt.sshCmd;
    argv.push_back(cmd);
    std::vector<char *> cargv;
    for (const auto &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        if (logFd >= 0)
            ::close(logFd);
        if (err)
            *err = std::string("fork failed: ") +
                   std::strerror(errno);
        return nullptr;
    }
    if (pid == 0) {
        const int devnull = ::open("/dev/null", O_RDONLY);
        if (devnull >= 0)
            ::dup2(devnull, 0);
        if (logFd >= 0) {
            ::dup2(logFd, 1);
            ::dup2(logFd, 2);
        }
        ::execvp(cargv[0], cargv.data());
        ::_exit(127);
    }
    if (logFd >= 0)
        ::close(logFd);
    h->sshPid = pid;
    return h;
}

PollResult
RemoteTransport::poll(WorkerHandle &wh)
{
    auto &h = static_cast<RemoteHandle &>(wh);
    if (h.reaped)
        return h.final;
    int status = 0;
    const pid_t r = ::waitpid(h.sshPid, &status, WNOHANG);
    PollResult pr;
    if (r == 0) {
        pr.state = WorkerState::Running;
        return pr;
    }
    if (r != h.sshPid) {
        pr.state = WorkerState::Unreachable;
        pr.error = std::string("waitpid: ") + std::strerror(errno);
        return pr;
    }
    h.reaped = true;
    if (WIFSIGNALED(status)) {
        pr.state = WorkerState::Unreachable;
        pr.error = "ssh client killed by signal " +
                   std::to_string(WTERMSIG(status));
        h.final = pr;
        return pr;
    }
    const int code = WEXITSTATUS(status);
    if (code == 255) {
        // ssh's own "connection/authentication failed" code — the
        // worker's fate is unknown: a transport failure, not a
        // worker verdict.
        pr.state = WorkerState::Unreachable;
        pr.error = "ssh transport error (exit 255)";
        h.final = pr;
        return pr;
    }
    pr.state = WorkerState::Exited;
    pr.exitCode = code;
    pr.ok = code == 0;
    if (code > 128) {
        pr.termSignal = code - 128;
        pr.error = "killed by signal " +
                   std::to_string(pr.termSignal);
    } else if (!pr.ok) {
        pr.error = "exit code " + std::to_string(code);
    }
    h.final = pr;
    return pr;
}

bool
RemoteTransport::heartbeat(WorkerHandle &wh, HeartbeatInfo *info,
                           std::string *err)
{
    auto &h = static_cast<RemoteHandle &>(wh);
    const double now = wallMs();
    if (now - h.lastProbeMs < _opt.heartbeatRefreshMs) {
        *info = h.cached;
        if (!h.cachedOk && err)
            *err = h.cachedErr;
        return h.cachedOk;
    }
    h.lastProbeMs = now;

    Op hb{_opt, "heartbeat probe"};
    const std::string rdir = shellQuote(h.remoteDir);
    const RunResult r = hb.run(
        "cd " + rdir + " && { { wc -c < metrics.csv; } 2>/dev/null"
        " || echo -1; } && { tail -n 1 metrics.csv 2>/dev/null"
        " || true; }", "");
    if (!r.ok()) {
        h.cachedOk = false;
        h.cachedErr = hb.describe(r);
        h.cached = HeartbeatInfo{};
        *info = h.cached;
        if (err)
            *err = h.cachedErr;
        return false;
    }
    HeartbeatInfo out;
    const char *p = r.out.c_str();
    char *end = nullptr;
    const long sz = std::strtol(p, &end, 10);
    out.size = end == p ? -1 : sz;
    if (end && *end) {
        // Second line: the newest CSV row (or the header).
        const char *row = end;
        while (*row == '\n' || *row == '\r')
            ++row;
        if ((*row >= '0' && *row <= '9') || *row == '-' ||
            *row == '.')
            out.tickMs = std::strtod(row, nullptr);
    }
    // A cache hit above returns the *original* stamp, so the
    // supervisor's Δtick/Δwall rate never sees a stale sample as
    // fresh.
    out.wallMs = steadyWallMs();
    h.cachedOk = true;
    h.cached = out;
    *info = out;
    return true;
}

void
RemoteTransport::interrupt(WorkerHandle &wh)
{
    auto &h = static_cast<RemoteHandle &>(wh);
    Op op{_opt, "remote interrupt"};
    op.run("kill -TERM \"$(cat " + shellQuote(h.remoteDir + "/pid") +
           " 2>/dev/null)\" 2>/dev/null || true", "");
}

void
RemoteTransport::forceKill(WorkerHandle &wh)
{
    auto &h = static_cast<RemoteHandle &>(wh);
    Op op{_opt, "remote kill"};
    op.run("kill -KILL \"$(cat " + shellQuote(h.remoteDir + "/pid") +
           " 2>/dev/null)\" 2>/dev/null || true", "");
}

bool
RemoteTransport::fetch(WorkerHandle &wh, ArtifactManifest *out,
                       std::string *err)
{
    auto &h = static_cast<RemoteHandle &>(wh);
    out->clear();
    for (const std::string &name : attemptArtifactNames()) {
        Artifact a;
        a.name = name;
        a.localPath = h.attemptDir + "/" + name;
        const std::string rpath =
            shellQuote(h.remoteDir + "/" + name);

        Op sum{_opt, "checksum " + name};
        RunResult r = sum.run(shellQuote(_opt.vipSim) + " --fnv1a " +
                              rpath, "");
        if (r.started && !r.timedOut && r.termSignal == 0 &&
            r.exitCode == 1) {
            a.present = false; // the attempt never produced it
            out->push_back(std::move(a));
            continue;
        }
        std::uint64_t want = 0;
        if (!r.ok() || !scanFnvToken(r.out, &want)) {
            if (err)
                *err = r.ok() ? "unparsable checksum for " + name
                              : sum.describe(r);
            return false;
        }

        bool fetched = false;
        std::string lastErr;
        for (int i = 0; i < _opt.opRetries && !fetched; ++i) {
            Op cat{_opt, "fetch " + name};
            r = cat.run("cat " + rpath, "");
            if (!r.ok()) {
                lastErr = cat.describe(r);
                continue;
            }
            const std::uint64_t got =
                fnv1aBytes(r.out.data(), r.out.size());
            if (got != want) {
                lastErr = name + " corrupted in transit: remote " +
                          fnvHex(want) + ", received " + fnvHex(got);
                continue;
            }
            std::string werr;
            if (!writeFileAtomic(a.localPath, r.out, &werr)) {
                lastErr = werr;
                continue;
            }
            fetched = true;
        }
        if (!fetched) {
            if (err)
                *err = lastErr;
            return false;
        }
        a.present = true;
        a.fnv = want;
        out->push_back(std::move(a));
    }
    return true;
}

bool
RemoteTransport::probe(std::string *err)
{
    Op op{_opt, "probe"};
    const RunResult r = op.run("true", "");
    if (!r.ok()) {
        if (err)
            *err = op.describe(r);
        return false;
    }
    return true;
}

} // namespace fleet
} // namespace vip
