/**
 * @file
 * LocalTransport: fork/exec of vip_sim on this machine — the default
 * worker backend, extracted from the pre-transport supervisor.  Full
 * crash isolation, SIGKILL-able, stdout+stderr captured to the
 * attempt's log.txt.  The child chdir()s into the attempt directory,
 * so worker argv uses the fixed attempt-relative artifact names.
 */

#ifndef VIP_FLEET_TRANSPORT_LOCAL_TRANSPORT_HH
#define VIP_FLEET_TRANSPORT_LOCAL_TRANSPORT_HH

#include "fleet/transport/transport.hh"

namespace vip
{
namespace fleet
{

/** Heartbeat helpers shared with other local-disk transports. */
long statFileSize(const std::string &path);
double readLastTickMs(const std::string &metricsCsv);

class LocalTransport : public WorkerTransport
{
  public:
    /** @p vipSimPath must be an absolute path (children chdir). */
    explicit LocalTransport(std::string vipSimPath);

    const char *kind() const override { return "process"; }
    std::unique_ptr<WorkerHandle> launch(const LaunchRequest &req,
                                         std::string *err) override;
    PollResult poll(WorkerHandle &h) override;
    bool heartbeat(WorkerHandle &h, HeartbeatInfo *info,
                   std::string *err) override;
    void interrupt(WorkerHandle &h) override;
    void forceKill(WorkerHandle &h) override;
    bool fetch(WorkerHandle &h, ArtifactManifest *out,
               std::string *err) override;
    bool probe(std::string *err) override;

  private:
    std::string _vipSim;
};

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_TRANSPORT_LOCAL_TRANSPORT_HH
