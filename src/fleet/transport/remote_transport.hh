/**
 * @file
 * RemoteTransport: vip_sim on a remote host over ssh exec.
 *
 * One attempt = one remote attempt directory under the host's
 * configured remote root.  The transport stages the restore
 * checkpoint out (stdin pipe + FNV-1a verification against the local
 * checksum), launches `vip_sim` with `cd <dir> && exec ...` so argv
 * stays attempt-relative, and fetches artifacts back by asking the
 * remote `vip_sim --fnv1a <file>` for a source checksum, streaming
 * the bytes over `cat`, and verifying locally before an atomic
 * tmp+rename publication into the local attempt directory.
 *
 * Every network op is bounded (timeout + SIGKILL of the ssh child)
 * and retried with capped exponential backoff; an op that exhausts
 * its retries reports a transport failure, which feeds the host
 * health scorer — never a hang, never a silently torn artifact.
 *
 * The ssh command is configurable per host, which is also the
 * hermetic-test seam: pointing it at tests/fake_ssh.sh (drops the
 * host argument, runs the command locally) exercises the full
 * stage/launch/fetch/verify path with no network at all.
 */

#ifndef VIP_FLEET_TRANSPORT_REMOTE_TRANSPORT_HH
#define VIP_FLEET_TRANSPORT_REMOTE_TRANSPORT_HH

#include "fleet/transport/transport.hh"

namespace vip
{
namespace fleet
{

struct RemoteHostOptions
{
    std::string name;               ///< report/display name
    std::vector<std::string> sshCmd; ///< e.g. {"ssh","-oBatchMode=yes","node7"}
    std::string remoteDir;          ///< remote attempt-tree root
    std::string vipSim;             ///< remote worker binary path
    double opTimeoutMs = 30000.0;   ///< per network op
    int opRetries = 3;              ///< attempts per network op
    double retryBaseMs = 100.0;     ///< op retry backoff base
    double retryCapMs = 2000.0;     ///< op retry backoff cap
    double heartbeatRefreshMs = 250.0; ///< heartbeat probe throttle
};

class RemoteTransport : public WorkerTransport
{
  public:
    explicit RemoteTransport(RemoteHostOptions opt);

    const char *kind() const override { return "ssh"; }
    std::unique_ptr<WorkerHandle> launch(const LaunchRequest &req,
                                         std::string *err) override;
    PollResult poll(WorkerHandle &h) override;
    bool heartbeat(WorkerHandle &h, HeartbeatInfo *info,
                   std::string *err) override;
    void interrupt(WorkerHandle &h) override;
    void forceKill(WorkerHandle &h) override;
    bool fetch(WorkerHandle &h, ArtifactManifest *out,
               std::string *err) override;
    bool probe(std::string *err) override;

  private:
    struct Op; ///< one bounded, retried remote command

    RemoteHostOptions _opt;
};

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_TRANSPORT_REMOTE_TRANSPORT_HH
