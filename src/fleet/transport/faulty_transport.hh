/**
 * @file
 * FaultyTransport: a deterministic fault-injection decorator around
 * any WorkerTransport, so every partition-tolerance path in the
 * supervisor — lease expiry, zombie rejection, fetch retry, host
 * quarantine, graceful degradation — is exercisable on one machine
 * with no network and no timing luck.
 *
 * Faults are keyed on (seed, op count), never on wall time or a
 * global RNG: the same spec against the same sweep injects the same
 * faults at the same ops on every run.  Spec grammar (comma-joined):
 *
 *   seed=N            RNG seed (default 1)
 *   drop=P            op fails with a transport error, prob P
 *   delay=P           op succeeds after a small injected stall
 *   dup=P             op runs twice (idempotency exercise)
 *   corrupt=P         fetch succeeds but a manifest checksum lies
 *   partition@N+M     ops [N, N+M) all fail; workers keep running
 *   partitionMs=S+D   same window, on wall ms since construction
 *   die@N             from op N on, the host is permanently dead
 *                     (live workers are killed once — a host crash)
 *   dieMs=N           same, on wall ms since construction
 *
 * Probability faults apply to poll/heartbeat/fetch/probe only;
 * launch, interrupt, and forceKill stay clean so claims release
 * correctly and cleanup always works — zombies come from partitions
 * and deaths, which *do* cover launch.  corrupt applies to fetch
 * only.
 */

#ifndef VIP_FLEET_TRANSPORT_FAULTY_TRANSPORT_HH
#define VIP_FLEET_TRANSPORT_FAULTY_TRANSPORT_HH

#include "fleet/transport/transport.hh"

namespace vip
{
namespace fleet
{

struct FaultSpec
{
    std::uint64_t seed = 1;
    double drop = 0.0;
    double delay = 0.0;
    double dup = 0.0;
    double corrupt = 0.0;
    long partitionAtOp = -1; ///< first partitioned op, -1 = none
    long partitionOps = 0;   ///< window length in ops
    double partitionAtMs = -1.0;
    double partitionMs = 0.0;
    long dieAtOp = -1;    ///< first dead op, -1 = never
    double dieAtMs = -1.0;

    /** Parse the spec grammar above; false + *err on bad input. */
    static bool parse(const std::string &s, FaultSpec *out,
                      std::string *err);
};

/** Injection tally, for the report's fault section. */
struct FaultCounters
{
    long ops = 0;
    long drops = 0;
    long delays = 0;
    long dups = 0;
    long corrupts = 0;
    long partitioned = 0; ///< ops failed inside a partition window
    bool died = false;
};

class FaultyTransport : public WorkerTransport
{
  public:
    FaultyTransport(std::unique_ptr<WorkerTransport> inner,
                    FaultSpec spec);
    ~FaultyTransport() override;

    const char *kind() const override;
    std::unique_ptr<WorkerHandle> launch(const LaunchRequest &req,
                                         std::string *err) override;
    PollResult poll(WorkerHandle &h) override;
    bool heartbeat(WorkerHandle &h, HeartbeatInfo *info,
                   std::string *err) override;
    void interrupt(WorkerHandle &h) override;
    void forceKill(WorkerHandle &h) override;
    bool fetch(WorkerHandle &h, ArtifactManifest *out,
               std::string *err) override;
    bool probe(std::string *err) override;

    const FaultCounters &counters() const { return _counters; }

  private:
    struct Handle;

    /** One per public op: advances the op counter and decides this
     *  op's fate. */
    struct Verdict
    {
        bool dead = false;        ///< die window reached
        bool partitioned = false; ///< inside a partition window
        bool drop = false;
        bool delay = false;
        bool dup = false;
        bool corrupt = false;
    };
    Verdict nextOp(bool probabilistic, bool fetchOp);
    void killAllOnce();

    std::unique_ptr<WorkerTransport> _inner;
    FaultSpec _spec;
    std::string _kind;
    FaultCounters _counters;
    double _t0Ms;
    bool _killed = false;
    std::vector<Handle *> _live;
};

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_TRANSPORT_FAULTY_TRANSPORT_HH
