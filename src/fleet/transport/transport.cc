#include "fleet/transport/transport.hh"

#include <sys/stat.h>

#include <chrono>

namespace vip
{
namespace fleet
{

double
steadyWallMs()
{
    // One process-wide epoch so every transport's stamps compare.
    static const auto t0 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

const std::vector<std::string> &
attemptArtifactNames()
{
    static const std::vector<std::string> names{
        attempt_files::kStats, attempt_files::kMetrics,
        attempt_files::kSeries, attempt_files::kDigest,
        attempt_files::kCheckpoint, attempt_files::kLog};
    return names;
}

bool
localManifest(const std::string &attemptDir, ArtifactManifest *out,
              std::string *err)
{
    struct stat st;
    if (::stat(attemptDir.c_str(), &st) != 0) {
        if (err)
            *err = "attempt directory " + attemptDir + " is gone";
        return false;
    }
    out->clear();
    for (const std::string &name : attemptArtifactNames()) {
        Artifact a;
        a.name = name;
        a.localPath = attemptDir + "/" + name;
        bool ok = false;
        const std::uint64_t h = fnv1aFile(a.localPath, &ok);
        a.present = ok;
        a.fnv = ok ? h : 0;
        out->push_back(std::move(a));
    }
    return true;
}

} // namespace fleet
} // namespace vip
