/**
 * @file
 * Artifact integrity and atomic-publication helpers shared by every
 * fleet transport: FNV-1a file checksums (same constants as the audit
 * digest stream and the snapshot trailer), tmp+rename atomic writes
 * (the `sim/snapshot` pattern), and checksum-verified atomic copies.
 *
 * The rule the fleet lives by: an artifact is either absent or whole.
 * Workers write into per-attempt staging directories; only an
 * accepted (fence-checked) attempt's artifacts are copied to the
 * canonical shard paths, and every copy is verified against the
 * manifest checksum and published with rename(2) so a killed
 * `vip_fleet` never leaves a torn report or half-copied shard behind.
 */

#ifndef VIP_FLEET_TRANSPORT_ARTIFACT_HH
#define VIP_FLEET_TRANSPORT_ARTIFACT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vip
{
namespace fleet
{

/** FNV-1a (64-bit) over a byte range; offset basis when n == 0. */
std::uint64_t fnv1aBytes(const void *data, std::size_t n);

/** Incremental FNV-1a, for streamed hashing. */
std::uint64_t fnv1aAccum(std::uint64_t h, const void *data,
                         std::size_t n);

/** FNV-1a offset basis (the empty-input hash). */
constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;

/**
 * FNV-1a of a whole file.  @p ok (when non-null) reports whether the
 * file was readable; an unreadable file hashes to the offset basis
 * with *ok = false.
 */
std::uint64_t fnv1aFile(const std::string &path, bool *ok = nullptr);

/** 16-hex-digit lowercase rendering of a 64-bit checksum. */
std::string fnvHex(std::uint64_t h);

/** Parse a 16-hex-digit checksum; false on malformed input. */
bool parseFnvHex(const std::string &s, std::uint64_t *out);

/**
 * Write @p content to @p path atomically: write to "<path>.tmp",
 * flush, then rename over the target.  Returns false (with *err set)
 * on any I/O failure; the target is never left torn.
 */
bool writeFileAtomic(const std::string &path,
                     const std::string &content, std::string *err);

/**
 * Copy @p src to @p dst atomically, verifying the source bytes hash
 * to @p expectFnv while streaming (tmp+rename publication).  Detects
 * both corruption-in-transit (source no longer matches the manifest)
 * and torn local writes.
 */
bool copyFileAtomicVerified(const std::string &src,
                            const std::string &dst,
                            std::uint64_t expectFnv, std::string *err);

/** One named artifact of a worker attempt, checksummed at fetch. */
struct Artifact
{
    std::string name;      ///< attempt-relative ("stats.json", ...)
    std::string localPath; ///< where the fetched bytes live locally
    std::uint64_t fnv = 0; ///< checksum computed at the source
    bool present = false;  ///< the attempt produced this artifact
};

using ArtifactManifest = std::vector<Artifact>;

/** Manifest entry by name, or nullptr. */
const Artifact *findArtifact(const ArtifactManifest &m,
                             const std::string &name);

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_TRANSPORT_ARTIFACT_HH
