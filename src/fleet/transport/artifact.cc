#include "fleet/transport/artifact.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>

namespace fs = std::filesystem;

namespace vip
{
namespace fleet
{

std::uint64_t
fnv1aAccum(std::uint64_t h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
fnv1aBytes(const void *data, std::size_t n)
{
    return fnv1aAccum(kFnvOffsetBasis, data, n);
}

std::uint64_t
fnv1aFile(const std::string &path, bool *ok)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (ok)
            *ok = false;
        return kFnvOffsetBasis;
    }
    std::uint64_t h = kFnvOffsetBasis;
    char buf[1 << 16];
    while (in.read(buf, sizeof(buf)) || in.gcount() > 0)
        h = fnv1aAccum(h, buf, static_cast<std::size_t>(in.gcount()));
    if (ok)
        *ok = !in.bad();
    return h;
}

std::string
fnvHex(std::uint64_t h)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

bool
parseFnvHex(const std::string &s, std::uint64_t *out)
{
    if (s.size() != 16)
        return false;
    std::uint64_t h = 0;
    for (char c : s) {
        int d;
        if (c >= '0' && c <= '9')
            d = c - '0';
        else if (c >= 'a' && c <= 'f')
            d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F')
            d = c - 'A' + 10;
        else
            return false;
        h = (h << 4) | static_cast<std::uint64_t>(d);
    }
    *out = h;
    return true;
}

bool
writeFileAtomic(const std::string &path, const std::string &content,
                std::string *err)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            if (err)
                *err = "cannot open " + tmp;
            return false;
        }
        os.write(content.data(),
                 static_cast<std::streamsize>(content.size()));
        os.flush();
        if (!os) {
            if (err)
                *err = "short write on " + tmp;
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        if (err)
            *err = "rename " + tmp + " -> " + path + ": " +
                   ec.message();
        return false;
    }
    return true;
}

bool
copyFileAtomicVerified(const std::string &src, const std::string &dst,
                       std::uint64_t expectFnv, std::string *err)
{
    std::ifstream in(src, std::ios::binary);
    if (!in) {
        if (err)
            *err = "cannot read " + src;
        return false;
    }
    const std::string tmp = dst + ".tmp";
    {
        std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
        if (!os) {
            if (err)
                *err = "cannot open " + tmp;
            return false;
        }
        std::uint64_t h = kFnvOffsetBasis;
        char buf[1 << 16];
        while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
            const auto n = static_cast<std::size_t>(in.gcount());
            h = fnv1aAccum(h, buf, n);
            os.write(buf, static_cast<std::streamsize>(n));
        }
        os.flush();
        if (in.bad() || !os) {
            if (err)
                *err = "I/O error copying " + src + " -> " + tmp;
            return false;
        }
        if (h != expectFnv) {
            if (err)
                *err = "checksum mismatch on " + src + ": manifest " +
                       fnvHex(expectFnv) + ", got " + fnvHex(h);
            return false;
        }
    }
    std::error_code ec;
    fs::rename(tmp, dst, ec);
    if (ec) {
        if (err)
            *err = "rename " + tmp + " -> " + dst + ": " +
                   ec.message();
        return false;
    }
    return true;
}

const Artifact *
findArtifact(const ArtifactManifest &m, const std::string &name)
{
    for (const Artifact &a : m)
        if (a.name == name)
            return &a;
    return nullptr;
}

} // namespace fleet
} // namespace vip
