/**
 * @file
 * FleetJournal: the supervisor's append-only event journal.
 *
 * Every semantically meaningful supervisor transition — launch,
 * heartbeat-driven lease renewal, chaos/hang kill, lease expiry,
 * zombie settlement, commit, quarantine, probe, sweep start/end —
 * is one JSON object on one line of <outDir>/journal.jsonl, written
 * and flushed immediately so a SIGKILLed sweep still leaves a
 * replayable record.
 *
 * Records carry a strictly monotonic "seq" and the supervisor's
 * wall-clock "wall_ms"; job-scoped records also carry the attempt's
 * fencing token, so the journal alone reconstructs the ownership
 * story chaos tests assert on.
 *
 *   {"seq": 12, "wall_ms": 153.2, "type": "lease_expiry",
 *    "job": "vip-W1-s2", "token": 3, "host": "local"}
 *
 * A journal that was never open()ed swallows records silently: the
 * supervisor calls it unconditionally.
 */

#ifndef VIP_FLEET_JOURNAL_HH
#define VIP_FLEET_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <string>

namespace vip
{
namespace fleet
{

class FleetJournal
{
  public:
    /** Truncate-open @p path; fatal on failure.  "" disables. */
    void open(const std::string &path);

    bool enabled() const { return _out.is_open(); }
    std::uint64_t records() const { return _seq; }

    /**
     * One in-flight record; fields append in call order and the
     * destructor writes + flushes the line.  Returned by event(); use
     * as a builder:
     *
     *   journal.event(now, "launch").str("job", id).u64("token", t);
     */
    class Record
    {
      public:
        Record(Record &&o) noexcept : _j(o._j), _line(std::move(o._line))
        {
            o._j = nullptr;
        }
        Record(const Record &) = delete;
        Record &operator=(const Record &) = delete;
        Record &operator=(Record &&) = delete;
        ~Record();

        Record &str(const char *key, const std::string &v);
        Record &num(const char *key, double v);
        Record &u64(const char *key, std::uint64_t v);
        Record &b(const char *key, bool v);

      private:
        friend class FleetJournal;
        Record(FleetJournal *j, double wallMs, const char *type);

        FleetJournal *_j; ///< null when disabled or moved-from
        std::string _line;
    };

    /** Start a record (no-op builder when the journal is closed). */
    Record event(double wallMs, const char *type);

  private:
    friend class Record;
    std::ofstream _out;
    std::uint64_t _seq = 0;
};

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_JOURNAL_HH
