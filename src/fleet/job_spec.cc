#include "fleet/job_spec.hh"

#include <cmath>
#include <fstream>
#include <set>
#include <sstream>

#include "fault/fault_plan.hh"
#include "obs/json.hh"
#include "sim/audit.hh"
#include "sim/logging.hh"

namespace vip
{
namespace fleet
{

SystemConfig
configByCliName(const std::string &name)
{
    if (name == "baseline")
        return SystemConfig::Baseline;
    if (name == "frameburst")
        return SystemConfig::FrameBurst;
    if (name == "iptoip")
        return SystemConfig::IpToIp;
    if (name == "iptoip-fb")
        return SystemConfig::IpToIpBurst;
    if (name == "vip")
        return SystemConfig::VIP;
    fatal("unknown config '", name, "' (use baseline | frameburst | "
          "iptoip | iptoip-fb | vip)");
}

Workload
workloadByName(const std::string &name)
{
    if (name.size() >= 2 && (name[0] == 'A' || name[0] == 'a'))
        return WorkloadCatalog::single(std::atoi(&name[1]));
    if (name.size() >= 2 && (name[0] == 'W' || name[0] == 'w'))
        return WorkloadCatalog::byIndex(std::atoi(&name[1]));
    fatal("unknown workload '", name, "' (use A1..A7 or W1..W8)");
}

namespace
{

/** Fault-plan spec strings embed '=' ',' '.'; job ids must survive
 *  shells and filesystems, so anything unusual becomes '_'. */
std::string
sanitizeForId(const std::string &s)
{
    std::string out;
    for (char c : s) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '-' || c == '.';
        out.push_back(ok ? c : '_');
    }
    return out;
}

std::vector<std::string>
stringAxis(const json::JsonValue &spec, const char *key, bool required)
{
    const json::JsonValue *v = spec.find(key);
    if (!v) {
        if (required)
            fatal("job spec: missing sweep axis '", key, "'");
        return {};
    }
    if (v->kind != json::JsonValue::Kind::Array)
        fatal("job spec: axis '", key, "' must be an array of strings");
    if (v->arr.empty())
        fatal("job spec: sweep axis '", key, "' is empty -- the cross "
              "product would contain no jobs");
    std::vector<std::string> out;
    for (const auto &e : v->arr) {
        if (e.kind != json::JsonValue::Kind::String)
            fatal("job spec: axis '", key, "' must contain only "
                  "strings");
        out.push_back(e.str);
    }
    return out;
}

double
numOr(const json::JsonValue &obj, const char *key, double fallback)
{
    const json::JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    if (v->kind != json::JsonValue::Kind::Number)
        fatal("job spec: field '", key, "' must be a number");
    return v->num;
}

bool
boolOr(const json::JsonValue &obj, const char *key, bool fallback)
{
    const json::JsonValue *v = obj.find(key);
    if (!v)
        return fallback;
    if (v->kind != json::JsonValue::Kind::Bool)
        fatal("job spec: field '", key, "' must be a boolean");
    return v->b;
}

/** A count/period that must land on a sane non-negative value. */
double
checkedNum(const json::JsonValue &obj, const char *key, double fallback,
           double lo, double hi)
{
    double v = numOr(obj, key, fallback);
    if (!std::isfinite(v) || v < lo || v > hi)
        fatal("job spec: field '", key, "' = ", v, " out of range [",
              lo, ", ", hi, "]");
    return v;
}

FleetPolicy
parsePolicy(const json::JsonValue &spec)
{
    FleetPolicy p;
    const json::JsonValue *f = spec.find("fleet");
    if (!f)
        return p;
    if (f->kind != json::JsonValue::Kind::Object)
        fatal("job spec: 'fleet' must be an object");
    p.workers =
        static_cast<int>(checkedNum(*f, "workers", p.workers, 1, 4096));
    p.maxAttempts = static_cast<int>(
        checkedNum(*f, "max_attempts", p.maxAttempts, 1, 1000));
    p.backoffBaseMs =
        checkedNum(*f, "backoff_base_ms", p.backoffBaseMs, 0.0, 1e9);
    p.backoffCapMs =
        checkedNum(*f, "backoff_cap_ms", p.backoffCapMs, 0.0, 1e9);
    if (p.backoffCapMs < p.backoffBaseMs)
        fatal("job spec: backoff_cap_ms (", p.backoffCapMs,
              ") below backoff_base_ms (", p.backoffBaseMs, ")");
    p.heartbeatDeadlineMs = checkedNum(*f, "heartbeat_deadline_ms",
                                       p.heartbeatDeadlineMs, 0.0, 1e9);
    p.heartbeatIntervalMs = checkedNum(*f, "heartbeat_interval_ms",
                                       p.heartbeatIntervalMs, 0.0, 1e6);
    p.checkpointEveryMs = checkedNum(*f, "checkpoint_every_ms",
                                     p.checkpointEveryMs, 0.0, 1e6);
    p.backoffJitter = boolOr(*f, "backoff_jitter", p.backoffJitter);
    p.leaseMs = checkedNum(*f, "lease_ms", p.leaseMs, 0.0, 1e9);
    p.heartbeatGraceMs = checkedNum(*f, "heartbeat_grace_ms",
                                    p.heartbeatGraceMs, 0.0, 1e9);
    p.quarantineAfter = static_cast<int>(checkedNum(
        *f, "quarantine_after", p.quarantineAfter, 1, 1000));
    p.probeIntervalMs = checkedNum(*f, "probe_interval_ms",
                                   p.probeIntervalMs, 1.0, 1e9);
    p.maxProbes = static_cast<int>(
        checkedNum(*f, "max_probes", p.maxProbes, 1, 1000));
    p.maxQuarantines = static_cast<int>(
        checkedNum(*f, "max_quarantines", p.maxQuarantines, 1, 1000));
    p.fetchRetries = static_cast<int>(
        checkedNum(*f, "fetch_retries", p.fetchRetries, 1, 100));
    p.resume = boolOr(*f, "resume", p.resume);
    p.digests = boolOr(*f, "digests", p.digests);
    p.timeseries = boolOr(*f, "timeseries", p.timeseries);
    if (p.heartbeatDeadlineMs > 0.0 && p.heartbeatIntervalMs <= 0.0)
        fatal("job spec: heartbeat_deadline_ms needs a positive "
              "heartbeat_interval_ms (the deadline watches the "
              "metrics stream)");
    return p;
}

} // namespace

JobSpec
JobSpec::parse(const std::string &text)
{
    json::JsonValue doc;
    try {
        doc = json::parse(text);
    } catch (const SimFatal &e) {
        fatal("job spec: malformed JSON: ", e.what());
    }
    if (doc.kind != json::JsonValue::Kind::Object)
        fatal("job spec: top level must be an object");

    JobSpec out;
    if (const auto *n = doc.find("name")) {
        if (n->kind != json::JsonValue::Kind::String)
            fatal("job spec: 'name' must be a string");
        out.name = n->str;
    }
    out.seconds = checkedNum(doc, "seconds", out.seconds, 1e-6, 3600.0);
    if (const auto *a = doc.find("audit")) {
        if (a->kind != json::JsonValue::Kind::String)
            fatal("job spec: 'audit' must be a string");
        out.audit = a->str;
        AuditConfig::parse(out.audit); // validate now, not per worker
    }
    if (const auto *x = doc.find("extra_args")) {
        if (x->kind != json::JsonValue::Kind::Array)
            fatal("job spec: 'extra_args' must be an array of strings");
        for (const auto &e : x->arr) {
            if (e.kind != json::JsonValue::Kind::String)
                fatal("job spec: 'extra_args' must contain only "
                      "strings");
            out.extraArgs.push_back(e.str);
        }
    }
    out.fleet = parsePolicy(doc);

    auto configs = stringAxis(doc, "configs", true);
    auto workloads = stringAxis(doc, "workloads", true);
    auto faults = stringAxis(doc, "fault_plans", false);
    if (faults.empty())
        faults.push_back("none");

    std::vector<std::uint64_t> seeds;
    if (const auto *s = doc.find("seeds")) {
        if (s->kind != json::JsonValue::Kind::Array)
            fatal("job spec: 'seeds' must be an array of non-negative "
                  "integers");
        if (s->arr.empty())
            fatal("job spec: sweep axis 'seeds' is empty -- the cross "
                  "product would contain no jobs");
        for (const auto &e : s->arr) {
            if (e.kind != json::JsonValue::Kind::Number ||
                e.num < 0.0 || e.num != std::floor(e.num))
                fatal("job spec: 'seeds' must contain only "
                      "non-negative integers");
            seeds.push_back(static_cast<std::uint64_t>(e.num));
        }
    } else {
        seeds.push_back(1);
    }

    // Validate every axis value once, up front: a bad cell must fail
    // at submit time, not attempts deep into a long sweep.
    for (const auto &c : configs)
        configByCliName(c);
    for (const auto &w : workloads)
        workloadByName(w);
    for (const auto &f : faults) {
        if (f != "none" && !f.empty())
            FaultPlan::parse(f);
    }

    std::set<std::string> ids;
    for (const auto &c : configs) {
        for (const auto &w : workloads) {
            for (std::uint64_t s : seeds) {
                for (const auto &f : faults) {
                    FleetJob job;
                    job.config = c;
                    job.workload = w;
                    job.seed = s;
                    job.faultPlan = (f == "none") ? "" : f;
                    job.id = c + "-" + w + "-s" + std::to_string(s);
                    if (!job.faultPlan.empty())
                        job.id += "-" + sanitizeForId(job.faultPlan);
                    if (!ids.insert(job.id).second)
                        fatal("job spec: duplicate job id '", job.id,
                              "' -- a sweep axis repeats a value");
                    out.jobs.push_back(std::move(job));
                }
            }
        }
    }
    return out;
}

JobSpec
JobSpec::parseFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read job spec '", path, "'");
    std::ostringstream ss;
    ss << in.rdbuf();
    return parse(ss.str());
}

} // namespace fleet
} // namespace vip
