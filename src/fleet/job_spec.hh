/**
 * @file
 * Declarative fleet job specs: the sweep a `vip_fleet` run executes.
 *
 * A spec is a JSON document naming the sweep axes (configs x
 * workloads x seeds x fault plans) plus the fleet policy (worker
 * count, retry/backoff, liveness deadline, checkpoint cadence).  The
 * parser expands the axes into the full cross product of jobs, each
 * with a unique shell-safe id, and rejects anything malformed with a
 * crisp SimFatal — never UB, never a half-parsed sweep:
 *
 * {
 *   "name": "nightly-sweep",
 *   "seconds": 0.4,
 *   "configs": ["vip", "baseline"],
 *   "workloads": ["W4", "A5"],
 *   "seeds": [1, 2, 3],
 *   "fault_plans": ["none", "light"],
 *   "audit": "periodic:1",
 *   "fleet": {
 *     "workers": 4,
 *     "max_attempts": 3,
 *     "backoff_base_ms": 250,
 *     "backoff_cap_ms": 10000,
 *     "backoff_jitter": true,
 *     "lease_ms": 10000,
 *     "heartbeat_deadline_ms": 5000,
 *     "heartbeat_grace_ms": 1000,
 *     "quarantine_after": 3,
 *     "probe_interval_ms": 500,
 *     "heartbeat_interval_ms": 1.0,
 *     "checkpoint_every_ms": 25,
 *     "resume": true,
 *     "digests": true
 *   }
 * }
 */

#ifndef VIP_FLEET_JOB_SPEC_HH
#define VIP_FLEET_JOB_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "app/workload.hh"
#include "core/system_config.hh"

namespace vip
{
namespace fleet
{

/** Supervision policy for one sweep. */
struct FleetPolicy
{
    /** Concurrent workers (processes or threads). */
    int workers = 2;

    /** Total tries per job, first run included (>= 1). */
    int maxAttempts = 3;

    /** @{ Exponential backoff between attempts (wall-clock ms):
     *  delay before retry k (k = 1 after the first failure) is
     *  min(cap, base * 2^(k-1)).  base 0 retries immediately. */
    double backoffBaseMs = 250.0;
    double backoffCapMs = 10000.0;
    /** @} */

    /**
     * Decorrelate retry delays with seeded jitter: retry k waits
     * min(cap, base + u * (3 * prev - base)) where u is drawn
     * deterministically from (job id, attempt).  Prevents
     * lockstep retry storms when many shards fail together (a host
     * dying fails a whole slot-full at once) while staying exactly
     * reproducible.  Off = the plain exponential ladder above.
     */
    bool backoffJitter = true;

    /**
     * Lease duration for job ownership (wall-clock ms).  A claimed
     * job carries a monotonically increasing fencing token; its
     * lease renews on every sign of life (a Running poll, a
     * heartbeat advance).  When the lease expires — partitioned
     * host, wedged transport — the job is handed to another worker
     * under a *new* token, and any artifacts the old attempt later
     * produces are rejected by token comparison, never merged twice.
     */
    double leaseMs = 10000.0;

    /**
     * Startup grace before the heartbeat watchdog arms (wall-clock
     * ms): a freshly launched worker gets this long to produce its
     * first metrics bytes before "no heartbeat" counts against it.
     * Covers process spawn, remote staging, and simulator warmup.
     */
    double heartbeatGraceMs = 1000.0;

    /** @{ Host health: this many *consecutive* transport failures
     *  quarantine a host; re-admission probes start after
     *  probe_interval_ms (doubling per failure and per repeat
     *  offense); max_probes failed probes in one quarantine — or
     *  max_quarantines trips to the bench — and the host is dead. */
    int quarantineAfter = 3;
    double probeIntervalMs = 500.0;
    int maxProbes = 5;
    int maxQuarantines = 3;
    /** @} */

    /** Artifact fetch attempts per finished worker before the
     *  attempt is counted as failed (checksum mismatches and
     *  transport errors both consume one). */
    int fetchRetries = 3;

    /**
     * Liveness watchdog: a worker whose heartbeat (its streamed
     * metrics CSV) does not advance for this many wall-clock ms is
     * declared hung and killed.  0 disables hang detection.
     */
    double heartbeatDeadlineMs = 5000.0;

    /**
     * Heartbeat cadence in *simulated* ms (--metrics-interval-ms of
     * every worker).  0 disables the heartbeat stream entirely —
     * and with it hang detection and sim-progress tracking.
     */
    double heartbeatIntervalMs = 1.0;

    /**
     * Checkpoint-ring cadence in simulated ms threaded into every
     * worker (--checkpoint-every-ms): a killed shard resumes from
     * the newest ring snapshot instead of rerunning from tick 0.
     */
    double checkpointEveryMs = 25.0;

    /** Resume killed/crashed shards from their checkpoint ring. */
    bool resume = true;

    /** Record a per-shard digest stream (--digest-out). */
    bool digests = false;

    /** Arm the per-shard time-series plane (--ts --ts-out): each
     *  shard commits a series.json, and the supervisor surfaces the
     *  steady-state verdict in fleet-status.json (for vip_top). */
    bool timeseries = false;
};

/** One expanded cell of the sweep. */
struct FleetJob
{
    std::string id;        ///< unique, shell-safe
    std::string config;    ///< CLI config name ("vip", ...)
    std::string workload;  ///< "A1".."A7" | "W1".."W8"
    std::uint64_t seed = 1;
    std::string faultPlan; ///< spec string; "" / "none" = fault-free
};

/** A fully parsed and validated sweep. */
struct JobSpec
{
    std::string name = "sweep";
    double seconds = 0.1;
    std::string audit;  ///< --audit spec; "" = off
    FleetPolicy fleet;
    /** Extra vip_sim flags appended verbatim (process mode only). */
    std::vector<std::string> extraArgs;
    /** The expanded cross product, spec order. */
    std::vector<FleetJob> jobs;

    /** Parse a spec document.  SimFatal on any malformed input. */
    static JobSpec parse(const std::string &text);
    /** Parse a spec file.  SimFatal when unreadable. */
    static JobSpec parseFile(const std::string &path);
};

/** CLI config name -> SystemConfig ("baseline" | "frameburst" |
 *  "iptoip" | "iptoip-fb" | "vip"); SimFatal on anything else. */
SystemConfig configByCliName(const std::string &name);

/** "A1".."A7" / "W1".."W8" -> catalog entry; SimFatal otherwise. */
Workload workloadByName(const std::string &name);

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_JOB_SPEC_HH
