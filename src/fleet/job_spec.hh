/**
 * @file
 * Declarative fleet job specs: the sweep a `vip_fleet` run executes.
 *
 * A spec is a JSON document naming the sweep axes (configs x
 * workloads x seeds x fault plans) plus the fleet policy (worker
 * count, retry/backoff, liveness deadline, checkpoint cadence).  The
 * parser expands the axes into the full cross product of jobs, each
 * with a unique shell-safe id, and rejects anything malformed with a
 * crisp SimFatal — never UB, never a half-parsed sweep:
 *
 * {
 *   "name": "nightly-sweep",
 *   "seconds": 0.4,
 *   "configs": ["vip", "baseline"],
 *   "workloads": ["W4", "A5"],
 *   "seeds": [1, 2, 3],
 *   "fault_plans": ["none", "light"],
 *   "audit": "periodic:1",
 *   "fleet": {
 *     "workers": 4,
 *     "max_attempts": 3,
 *     "backoff_base_ms": 250,
 *     "backoff_cap_ms": 10000,
 *     "heartbeat_deadline_ms": 5000,
 *     "heartbeat_interval_ms": 1.0,
 *     "checkpoint_every_ms": 25,
 *     "resume": true,
 *     "digests": true
 *   }
 * }
 */

#ifndef VIP_FLEET_JOB_SPEC_HH
#define VIP_FLEET_JOB_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "app/workload.hh"
#include "core/system_config.hh"

namespace vip
{
namespace fleet
{

/** Supervision policy for one sweep. */
struct FleetPolicy
{
    /** Concurrent workers (processes or threads). */
    int workers = 2;

    /** Total tries per job, first run included (>= 1). */
    int maxAttempts = 3;

    /** @{ Exponential backoff between attempts (wall-clock ms):
     *  delay before retry k (k = 1 after the first failure) is
     *  min(cap, base * 2^(k-1)).  base 0 retries immediately. */
    double backoffBaseMs = 250.0;
    double backoffCapMs = 10000.0;
    /** @} */

    /**
     * Liveness watchdog: a worker whose heartbeat (its streamed
     * metrics CSV) does not advance for this many wall-clock ms is
     * declared hung and killed.  0 disables hang detection.
     */
    double heartbeatDeadlineMs = 5000.0;

    /**
     * Heartbeat cadence in *simulated* ms (--metrics-interval-ms of
     * every worker).  0 disables the heartbeat stream entirely —
     * and with it hang detection and sim-progress tracking.
     */
    double heartbeatIntervalMs = 1.0;

    /**
     * Checkpoint-ring cadence in simulated ms threaded into every
     * worker (--checkpoint-every-ms): a killed shard resumes from
     * the newest ring snapshot instead of rerunning from tick 0.
     */
    double checkpointEveryMs = 25.0;

    /** Resume killed/crashed shards from their checkpoint ring. */
    bool resume = true;

    /** Record a per-shard digest stream (--digest-out). */
    bool digests = false;
};

/** One expanded cell of the sweep. */
struct FleetJob
{
    std::string id;        ///< unique, shell-safe
    std::string config;    ///< CLI config name ("vip", ...)
    std::string workload;  ///< "A1".."A7" | "W1".."W8"
    std::uint64_t seed = 1;
    std::string faultPlan; ///< spec string; "" / "none" = fault-free
};

/** A fully parsed and validated sweep. */
struct JobSpec
{
    std::string name = "sweep";
    double seconds = 0.1;
    std::string audit;  ///< --audit spec; "" = off
    FleetPolicy fleet;
    /** Extra vip_sim flags appended verbatim (process mode only). */
    std::vector<std::string> extraArgs;
    /** The expanded cross product, spec order. */
    std::vector<FleetJob> jobs;

    /** Parse a spec document.  SimFatal on any malformed input. */
    static JobSpec parse(const std::string &text);
    /** Parse a spec file.  SimFatal when unreadable. */
    static JobSpec parseFile(const std::string &path);
};

/** CLI config name -> SystemConfig ("baseline" | "frameburst" |
 *  "iptoip" | "iptoip-fb" | "vip"); SimFatal on anything else. */
SystemConfig configByCliName(const std::string &name);

/** "A1".."A7" / "W1".."W8" -> catalog entry; SimFatal otherwise. */
Workload workloadByName(const std::string &name);

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_JOB_SPEC_HH
