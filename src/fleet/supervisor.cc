#include "fleet/supervisor.hh"

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <deque>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <utility>

#include "fleet/transport/faulty_transport.hh"
#include "obs/stats_io.hh"
#include "obs/stats_merge.hh"
#include "sim/logging.hh"

namespace fs = std::filesystem;

namespace vip
{
namespace fleet
{

namespace
{

std::string
esc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
fmtNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

bool
fileExists(const std::string &path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

} // namespace

const char *
workerModeName(WorkerMode m)
{
    switch (m) {
      case WorkerMode::Process: return "process";
      case WorkerMode::Thread: return "thread";
    }
    return "?";
}

ShardPaths
shardPaths(const std::string &outDir, const std::string &jobId)
{
    ShardPaths p;
    p.dir = outDir + "/shards/" + jobId;
    p.statsJson = p.dir + "/stats.json";
    p.metricsCsv = p.dir + "/metrics.csv";
    p.series = p.dir + "/series.json";
    p.pmDir = p.dir + "/pm";
    p.checkpoint = p.pmDir + "/checkpoint.vips";
    p.digest = p.dir + "/digest.dig";
    p.log = p.dir + "/log.txt";
    return p;
}

std::string
attemptDir(const std::string &outDir, const std::string &jobId,
           std::uint64_t token)
{
    return outDir + "/shards/" + jobId + "/a" +
           std::to_string(token);
}

std::vector<std::string>
workerArgs(const JobSpec &spec, const FleetJob &job)
{
    const FleetPolicy &pol = spec.fleet;
    std::vector<std::string> a;
    a.push_back("--workload");
    a.push_back(job.workload);
    a.push_back("--config");
    a.push_back(job.config);
    a.push_back("--seed");
    a.push_back(std::to_string(job.seed));
    a.push_back("--seconds");
    a.push_back(fmtNum(spec.seconds));
    if (!job.faultPlan.empty()) {
        a.push_back("--fault-plan");
        a.push_back(job.faultPlan);
    }
    if (!spec.audit.empty()) {
        a.push_back("--audit");
        a.push_back(spec.audit);
    }
    if (pol.digests) {
        a.push_back("--digest-out");
        a.push_back(attempt_files::kDigest);
    }
    if (pol.heartbeatIntervalMs > 0.0) {
        a.push_back("--metrics-out");
        a.push_back(attempt_files::kMetrics);
        a.push_back("--metrics-interval-ms");
        a.push_back(fmtNum(pol.heartbeatIntervalMs));
    }
    if (pol.timeseries) {
        a.push_back("--ts");
        a.push_back("--ts-out");
        a.push_back(attempt_files::kSeries);
    }
    a.push_back("--stats-out");
    a.push_back(attempt_files::kStats);
    a.push_back("--postmortem-dir");
    a.push_back(attempt_files::kPmDir);
    if (pol.checkpointEveryMs > 0.0) {
        a.push_back("--checkpoint-every-ms");
        a.push_back(fmtNum(pol.checkpointEveryMs));
    }
    for (const auto &x : spec.extraArgs)
        a.push_back(x);
    return a;
}

/** One live worker backend plus its health record. */
struct FleetSupervisor::HostRuntime
{
    HostSpec spec;
    std::unique_ptr<WorkerTransport> transport;
    HostHealth health;
    FaultyTransport *faulty = nullptr; ///< non-owning, when wrapped
    std::size_t jobsDone = 0;

    HostRuntime(HostSpec s, std::unique_ptr<WorkerTransport> t,
                HealthPolicy hp)
        : spec(std::move(s)), transport(std::move(t)), health(hp)
    {
    }
};

/** One worker seat: at most one running attempt. */
struct FleetSupervisor::Slot
{
    bool active = false;
    std::size_t hostIdx = 0;
    std::size_t jobIdx = FleetScheduler::npos;
    std::uint64_t token = 0;
    std::string aDir;
    double startMs = 0.0;

    /** @{ heartbeat tracking */
    long lastSize = -1;      ///< newest observed CSV size
    double lastBeatMs = 0.0; ///< wall time the CSV last changed
    double lastTickMs = -1.0;     ///< newest simulated progress
    double lastTickWallMs = -1.0; ///< transport stamp of that sample
    double simRate = 0.0;    ///< sim ms per wall second (smoothed)
    /** Recent simRate observations, newest last (bounded); the
     *  per-shard throughput window fleet-status.json publishes and
     *  vip_top renders as a sparkline. */
    std::deque<double> rateWindow;
    /** @} */

    bool chaosKilled = false;
    bool hangKilled = false;

    bool exited = false;     ///< worker done; fetching artifacts
    PollResult exitResult;
    int fetchAttempts = 0;

    std::unique_ptr<WorkerHandle> handle;
};

/** An attempt whose lease expired: detached from the scheduler's
 *  accounting but still worth watching — its result is fence-checked
 *  and either rescued or rejected when it finally lands. */
struct FleetSupervisor::Zombie : FleetSupervisor::Slot
{
};

FleetSupervisor::FleetSupervisor(JobSpec spec, FleetOptions opt)
    : _spec(std::move(spec)), _opt(std::move(opt)),
      _sched(_spec.jobs, _spec.fleet)
{
}

FleetSupervisor::~FleetSupervisor() = default;

void
FleetSupervisor::note(const std::string &line) const
{
    if (_opt.verbose)
        std::fprintf(stderr, "[fleet] %s\n", line.c_str());
}

void
FleetSupervisor::buildHosts()
{
    std::vector<HostSpec> roster = _opt.hosts;
    if (roster.empty()) {
        HostSpec local;
        local.name = "local";
        local.transport = _opt.mode == WorkerMode::Thread
                              ? "thread"
                              : "process";
        local.slots = _spec.fleet.workers;
        roster.push_back(std::move(local));
    }

    HealthPolicy hp;
    hp.quarantineAfter = _spec.fleet.quarantineAfter;
    hp.probeIntervalMs = _spec.fleet.probeIntervalMs;
    hp.maxProbes = _spec.fleet.maxProbes;
    hp.maxQuarantines = _spec.fleet.maxQuarantines;

    for (HostSpec &hs : roster) {
        if (hs.transport == "process" || hs.transport == "ssh") {
            if (_opt.vipSimPath.empty())
                fatal("fleet: host ", hs.name, " (", hs.transport,
                      ") needs the vip_sim path");
        }
        if (hs.transport == "process" &&
            ::access(_opt.vipSimPath.c_str(), X_OK) != 0)
            fatal("fleet: worker binary ", _opt.vipSimPath,
                  " is not executable: ", std::strerror(errno));
        std::string err;
        auto t = makeTransport(hs, _opt.vipSimPath, _opt.faultSpec,
                               &err);
        if (!t)
            fatal("fleet: host ", hs.name, ": ", err);
        _hosts.emplace_back(hs, std::move(t), hp);
        _hosts.back().faulty =
            dynamic_cast<FaultyTransport *>(
                _hosts.back().transport.get());
        for (int k = 0; k < hs.slots; ++k) {
            Slot s;
            s.hostIdx = _hosts.size() - 1;
            _slots.push_back(std::move(s));
        }
    }
}

bool
FleetSupervisor::hostUsable(std::size_t hostIdx) const
{
    return _hosts[hostIdx].health.usable();
}

void
FleetSupervisor::hostOpFailure(std::size_t hostIdx, double nowMs,
                               const std::string &detail)
{
    HostRuntime &h = _hosts[hostIdx];
    if (!h.health.onOpFailure(nowMs, detail))
        return;
    ++_quarantineEvents;
    if (h.health.state() == HostState::Dead) {
        _journal.event(nowMs, "host_dead")
            .str("host", h.spec.name)
            .u64("quarantines",
                 static_cast<std::uint64_t>(h.health.quarantines()))
            .str("error", detail);
        note("host " + h.spec.name + ": dead (flapped through " +
             std::to_string(h.health.quarantines() - 1) +
             " quarantines): " + detail);
    } else {
        _journal.event(nowMs, "quarantine")
            .str("host", h.spec.name)
            .str("error", detail);
        note("host " + h.spec.name + ": quarantined after " +
             std::to_string(_spec.fleet.quarantineAfter) +
             " consecutive transport failures: " + detail);
    }
}

void
FleetSupervisor::probeQuarantined(double nowMs)
{
    for (HostRuntime &h : _hosts) {
        if (!h.health.probeDue(nowMs))
            continue;
        std::string err;
        if (h.transport->probe(&err)) {
            h.health.onProbeSuccess();
            _journal.event(nowMs, "probe")
                .str("host", h.spec.name)
                .b("ok", true)
                .b("readmitted", true);
            note("host " + h.spec.name +
                 ": probe answered; re-admitted");
        } else if (h.health.onProbeFailure(nowMs, err)) {
            _journal.event(nowMs, "probe")
                .str("host", h.spec.name)
                .b("ok", false)
                .str("error", err);
            _journal.event(nowMs, "host_dead")
                .str("host", h.spec.name)
                .str("error", err);
            note("host " + h.spec.name + ": dead (" +
                 std::to_string(_spec.fleet.maxProbes) +
                 " re-admission probes failed): " + err);
        } else {
            _journal.event(nowMs, "probe")
                .str("host", h.spec.name)
                .b("ok", false)
                .str("error", err);
            note("host " + h.spec.name + ": probe failed (" + err +
                 "); still quarantined");
        }
    }
}

void
FleetSupervisor::launch(Slot &slot, std::size_t jobIdx, double nowMs)
{
    const JobProgress &p = _sched.job(jobIdx);
    HostRuntime &h = _hosts[slot.hostIdx];
    const ShardPaths paths = shardPaths(_opt.outDir, p.job.id);
    const bool resume = p.resumeNext;

    LaunchRequest req;
    req.jobId = p.job.id;
    req.token = p.token;
    req.attemptDir = attemptDir(_opt.outDir, p.job.id, p.token);
    req.args = workerArgs(_spec, p.job);
    req.restoreFrom = resume ? paths.checkpoint : "";
    req.spec = &_spec;
    req.job = &p.job;

    std::string err;
    auto handle = h.transport->launch(req, &err);
    if (!handle) {
        // The worker never started: hand the claim back untouched
        // (no attempt burned, no zombie possible) and score the
        // host.
        _journal.event(nowMs, "launch_fail")
            .str("job", p.job.id)
            .str("host", h.spec.name)
            .str("error", err);
        _sched.releaseClaim(jobIdx);
        hostOpFailure(slot.hostIdx, nowMs,
                      "launch " + p.job.id + ": " + err);
        return;
    }
    h.health.onOpSuccess();

    const std::size_t hostIdx = slot.hostIdx;
    slot = Slot{};
    slot.hostIdx = hostIdx;
    slot.active = true;
    slot.jobIdx = jobIdx;
    slot.token = p.token;
    slot.aDir = req.attemptDir;
    slot.startMs = nowMs;
    slot.lastBeatMs = nowMs;
    slot.handle = std::move(handle);

    if (p.attempts > 1)
        ++_retries;
    if (resume)
        ++_resumes;
    _journal.event(nowMs, "launch")
        .str("job", p.job.id)
        .u64("token", p.token)
        .u64("attempt", static_cast<std::uint64_t>(p.attempts))
        .str("host", h.spec.name)
        .b("resume", resume);
    note(p.job.id + ": attempt " + std::to_string(p.attempts) +
         " on " + h.spec.name +
         (resume ? " (resuming from " + paths.checkpoint + ")" : ""));
}

bool
FleetSupervisor::commitArtifacts(const std::string &jobId,
                                 const std::string &aDir,
                                 const ArtifactManifest &m,
                                 bool success, int attempt,
                                 std::string *err)
{
    const ShardPaths paths = shardPaths(_opt.outDir, jobId);
    std::error_code ec;
    fs::create_directories(paths.pmDir, ec);
    if (ec) {
        if (err)
            *err = "cannot create " + paths.pmDir + ": " +
                   ec.message();
        return false;
    }

    auto commit = [&](const char *name, const std::string &dst) {
        const Artifact *a = findArtifact(m, name);
        if (!a || !a->present)
            return true;
        return copyFileAtomicVerified(a->localPath, dst, a->fnv,
                                      err);
    };

    // The checkpoint commits on success *and* failure: a crashed
    // attempt's ring is exactly what the retry resumes from,
    // possibly on a different host.
    if (!commit(attempt_files::kCheckpoint, paths.checkpoint))
        return false;
    if (success) {
        if (!commit(attempt_files::kStats, paths.statsJson) ||
            !commit(attempt_files::kMetrics, paths.metricsCsv) ||
            !commit(attempt_files::kSeries, paths.series) ||
            !commit(attempt_files::kDigest, paths.digest))
            return false;
    }

    // Append this attempt's worker output to the one canonical log
    // stream (informational; not checksum-gated).
    const Artifact *lg = findArtifact(m, attempt_files::kLog);
    std::ofstream log(paths.log, std::ios::app);
    if (log) {
        log << "=== attempt " << attempt << " ===\n";
        if (lg && lg->present) {
            std::ifstream in(lg->localPath, std::ios::binary);
            log << in.rdbuf();
        }
    }
    return true;
}

void
FleetSupervisor::settleAttempt(Slot &slot, double nowMs,
                               const ArtifactManifest &m)
{
    const std::size_t idx = slot.jobIdx;
    const double elapsed = nowMs - slot.startMs;
    HostRuntime &h = _hosts[slot.hostIdx];
    const JobProgress &p = _sched.job(idx);
    const std::string id = p.job.id;
    const FleetPolicy &pol = _spec.fleet;

    const Artifact *stats = findArtifact(m, attempt_files::kStats);
    const Artifact *digest = findArtifact(m, attempt_files::kDigest);
    const Artifact *ckpt =
        findArtifact(m, attempt_files::kCheckpoint);
    const bool produced =
        stats && stats->present &&
        (!pol.digests || (digest && digest->present));
    const int attempt = p.attempts;

    if (slot.exitResult.ok && produced) {
        if (_sched.acceptSuccess(idx, slot.token, elapsed)) {
            std::string err;
            if (!commitArtifacts(id, slot.aDir, m, true, attempt,
                                 &err))
                fatal("fleet: cannot commit accepted artifacts of ",
                      id, ": ", err);
            ++h.jobsDone;
            // Surface the shard's steady-state verdict (if its
            // stats carry one) into fleet-status.json.
            if (_jobSteadyTickMs.size() < _sched.jobs().size())
                _jobSteadyTickMs.resize(_sched.jobs().size(), -1.0);
            const ShardPaths paths = shardPaths(_opt.outDir, id);
            std::ifstream sf(paths.statsJson);
            if (sf) {
                try {
                    StatsFile f = parseStatsJson(sf);
                    if (const StatEntry *e =
                            f.find("sim.steady.tick"))
                        _jobSteadyTickMs[idx] = e->value;
                } catch (const SimFatal &) {
                    // Informational only; a malformed stats file
                    // already failed digest/stats gates elsewhere.
                }
            }
            _journal.event(nowMs, "commit")
                .str("job", id)
                .u64("token", slot.token)
                .u64("attempt", static_cast<std::uint64_t>(attempt))
                .str("host", h.spec.name)
                .num("job_wall_ms", elapsed);
            note(id + ": done (" + fmtNum(elapsed) + " wall ms)");
        } else {
            _journal.event(nowMs, "stale_reject")
                .str("job", id)
                .u64("token", slot.token);
            note(id + ": result rejected (stale fencing token); "
                 "not merged");
        }
    } else {
        std::string why;
        if (slot.chaosKilled && slot.exitResult.termSignal != 0)
            why = "chaos SIGKILL (injected)";
        else if (slot.hangKilled)
            why = h.spec.transport == "thread"
                      ? "hung (no heartbeat), cancelled: " +
                            (slot.exitResult.error.empty()
                                 ? std::string("failed")
                                 : slot.exitResult.error)
                      : "hung (no heartbeat), killed";
        else if (slot.exitResult.ok && !produced)
            why = std::string("worker succeeded but ") +
                  (stats && stats->present
                       ? attempt_files::kDigest
                       : attempt_files::kStats) +
                  " was not produced";
        else
            why = slot.exitResult.error.empty()
                      ? "failed"
                      : slot.exitResult.error;
        const bool canResume = ckpt && ckpt->present;
        if (_sched.acceptFailure(idx, slot.token, nowMs, elapsed,
                                 why, canResume)) {
            std::string err;
            if (!commitArtifacts(id, slot.aDir, m, false, attempt,
                                 &err))
                note(id + ": checkpoint commit failed: " + err);
            const JobProgress &q = _sched.job(idx);
            _journal.event(nowMs, "job_fail")
                .str("job", id)
                .u64("token", slot.token)
                .u64("attempt", static_cast<std::uint64_t>(attempt))
                .str("host", h.spec.name)
                .str("why", why)
                .str("next_state", jobStateName(q.state))
                .b("will_resume", q.resumeNext);
            note(id + ": " + why + " -> " + jobStateName(q.state) +
                 (q.state == JobState::Backoff
                      ? (q.resumeNext ? " (will resume)"
                                      : " (will restart)")
                      : ""));
        }
    }
}

void
FleetSupervisor::tryFetch(Slot &slot, double nowMs)
{
    HostRuntime &h = _hosts[slot.hostIdx];
    const std::size_t idx = slot.jobIdx;
    const std::string id = _sched.job(idx).job.id;

    ArtifactManifest m;
    std::string err;
    bool ok = h.transport->fetch(*slot.handle, &m, &err);
    if (ok) {
        // Verify the local bytes against the source manifest before
        // anything is accepted or committed: a corrupted or torn
        // fetch must read as a fetch failure, not a result.
        for (const Artifact &a : m) {
            if (!a.present)
                continue;
            bool readable = false;
            const std::uint64_t got =
                fnv1aFile(a.localPath, &readable);
            if (!readable || got != a.fnv) {
                ok = false;
                err = "artifact " + a.name +
                      " failed checksum verification";
                break;
            }
        }
    }
    if (!ok) {
        hostOpFailure(slot.hostIdx, nowMs,
                      "fetch " + id + ": " + err);
        if (++slot.fetchAttempts >=
            _spec.fleet.fetchRetries) {
            const double elapsed = nowMs - slot.startMs;
            const std::string why =
                "artifact fetch failed after " +
                std::to_string(slot.fetchAttempts) +
                " attempts: " + err;
            _journal.event(nowMs, "fetch_fail")
                .str("job", id)
                .u64("token", slot.token)
                .str("host", h.spec.name)
                .str("error", err);
            if (_sched.acceptFailure(idx, slot.token, nowMs,
                                     elapsed, why, false))
                note(id + ": " + why);
            const std::size_t hostIdx = slot.hostIdx;
            slot = Slot{};
            slot.hostIdx = hostIdx;
        }
        return;
    }
    h.health.onOpSuccess();
    _sched.renewLease(idx, nowMs);
    settleAttempt(slot, nowMs, m);
    const std::size_t hostIdx = slot.hostIdx;
    slot = Slot{};
    slot.hostIdx = hostIdx;
}

void
FleetSupervisor::pollSlot(Slot &slot, double nowMs)
{
    if (!slot.active)
        return;
    HostRuntime &h = _hosts[slot.hostIdx];
    const FleetPolicy &pol = _spec.fleet;
    const JobProgress &p = _sched.job(slot.jobIdx);

    if (!slot.exited) {
        const PollResult pr = h.transport->poll(*slot.handle);
        if (pr.state == WorkerState::Unreachable) {
            hostOpFailure(slot.hostIdx, nowMs,
                          "poll " + p.job.id + ": " + pr.error);
            return; // no lease renewal: expiry reassigns the job
        }
        h.health.onOpSuccess();
        if (pr.state == WorkerState::Running) {
            _sched.renewLease(slot.jobIdx, nowMs);

            HeartbeatInfo hb;
            std::string err;
            if (!h.transport->heartbeat(*slot.handle, &hb, &err)) {
                hostOpFailure(slot.hostIdx, nowMs,
                              "heartbeat " + p.job.id + ": " + err);
            } else {
                h.health.onOpSuccess();
                if (hb.size >= 0 && hb.size != slot.lastSize) {
                    slot.lastSize = hb.size;
                    slot.lastBeatMs = nowMs;
                    _sched.renewLease(slot.jobIdx, nowMs);

                    // Per-worker rate from the transport's own
                    // sample stamps (a cached remote observation
                    // keeps its original stamp).
                    if (hb.tickMs >= 0.0 && hb.wallMs >= 0.0) {
                        if (slot.lastTickMs >= 0.0 &&
                            hb.wallMs > slot.lastTickWallMs) {
                            slot.simRate =
                                (hb.tickMs - slot.lastTickMs) /
                                ((hb.wallMs - slot.lastTickWallMs) /
                                 1000.0);
                            slot.rateWindow.push_back(slot.simRate);
                            if (slot.rateWindow.size() > 16)
                                slot.rateWindow.pop_front();
                        }
                        slot.lastTickMs = hb.tickMs;
                        slot.lastTickWallMs = hb.wallMs;
                    }
                    _journal.event(nowMs, "heartbeat")
                        .str("job", p.job.id)
                        .u64("token", slot.token)
                        .str("host", h.spec.name)
                        .num("tick_ms", hb.tickMs)
                        .u64("size",
                             static_cast<std::uint64_t>(hb.size))
                        .b("lease_renewed", true);

                    // Chaos injection keys on *simulated* progress
                    // so a ring checkpoint older than the kill point
                    // provably exists.
                    if (!_chaosFired && !_opt.killJobId.empty() &&
                        p.job.id == _opt.killJobId &&
                        p.attempts == 1 &&
                        h.spec.transport != "thread" &&
                        hb.tickMs >= _opt.killAtSimMs) {
                        _chaosFired = true;
                        slot.chaosKilled = true;
                        h.transport->forceKill(*slot.handle);
                        _journal.event(nowMs, "chaos_kill")
                            .str("job", p.job.id)
                            .u64("token", slot.token)
                            .num("tick_ms", hb.tickMs);
                        note(p.job.id + ": chaos SIGKILL at " +
                             fmtNum(hb.tickMs) + " simulated ms");
                    }
                }
            }

            const double grace =
                _opt.heartbeatGraceMsOverride >= 0.0
                    ? _opt.heartbeatGraceMsOverride
                    : pol.heartbeatGraceMs;
            if (pol.heartbeatDeadlineMs > 0.0 &&
                pol.heartbeatIntervalMs > 0.0 && !slot.hangKilled &&
                !slot.chaosKilled &&
                nowMs - slot.startMs > grace &&
                nowMs - slot.lastBeatMs > pol.heartbeatDeadlineMs) {
                slot.hangKilled = true;
                ++_hangKills;
                h.transport->forceKill(*slot.handle);
                _journal.event(nowMs, "hang_kill")
                    .str("job", p.job.id)
                    .u64("token", slot.token)
                    .str("host", h.spec.name)
                    .num("silent_ms", nowMs - slot.lastBeatMs);
                note(p.job.id + ": no heartbeat for " +
                     fmtNum(nowMs - slot.lastBeatMs) +
                     " wall ms; killed as hung");
            }
            return;
        }
        // Exited: remember the verdict and move to the fetch phase.
        slot.exited = true;
        slot.exitResult = pr;
        _sched.renewLease(slot.jobIdx, nowMs);
    }
    tryFetch(slot, nowMs);
}

void
FleetSupervisor::expireLease(Slot &slot, double nowMs)
{
    const std::size_t idx = slot.jobIdx;
    HostRuntime &h = _hosts[slot.hostIdx];
    const JobProgress &p = _sched.job(idx);
    const ShardPaths paths = shardPaths(_opt.outDir, p.job.id);
    const std::string why =
        "lease expired after " + fmtNum(_spec.fleet.leaseMs) +
        " ms on host " + h.spec.name +
        (h.health.lastError().empty()
             ? ""
             : " (" + h.health.lastError() + ")");
    // Resume eligibility comes from the canonical checkpoint (a
    // previously committed attempt): the zombie's own ring is out of
    // reach until — unless — it is fetched and rescued later.
    const bool canResume = fileExists(paths.checkpoint);
    _sched.onLeaseExpired(idx, nowMs, nowMs - slot.startMs, why,
                          canResume);
    _journal.event(nowMs, "lease_expiry")
        .str("job", p.job.id)
        .u64("token", slot.token)
        .str("host", h.spec.name)
        .b("can_resume", canResume);
    note(p.job.id + ": " + why + "; reassigning (attempt's fencing "
         "token " + std::to_string(slot.token) + " retired to "
         "zombie)");

    Zombie z;
    static_cast<Slot &>(z) = std::move(slot);
    _zombies.push_back(std::move(z));

    const std::size_t hostIdx = _zombies.back().hostIdx;
    slot = Slot{};
    slot.hostIdx = hostIdx;
}

void
FleetSupervisor::pollZombies(double nowMs)
{
    for (std::size_t zi = 0; zi < _zombies.size();) {
        Zombie &z = _zombies[zi];
        HostRuntime &h = _hosts[z.hostIdx];
        const std::string id = _sched.job(z.jobIdx).job.id;
        bool drop = false;

        if (!z.exited) {
            const PollResult pr = h.transport->poll(*z.handle);
            if (pr.state == WorkerState::Running) {
                ++zi;
                continue;
            }
            if (pr.state == WorkerState::Unreachable) {
                // Still partitioned; keep waiting (bounded by the
                // drain grace once the sweep settles).
                ++zi;
                continue;
            }
            z.exited = true;
            z.exitResult = pr;
        }

        ArtifactManifest m;
        std::string err;
        bool ok = h.transport->fetch(*z.handle, &m, &err);
        if (ok) {
            for (const Artifact &a : m) {
                if (!a.present)
                    continue;
                bool readable = false;
                if (fnv1aFile(a.localPath, &readable) != a.fnv ||
                    !readable) {
                    ok = false;
                    err = "artifact " + a.name +
                          " failed checksum verification";
                    break;
                }
            }
        }
        if (!ok) {
            if (++z.fetchAttempts >= _spec.fleet.fetchRetries) {
                _journal.event(nowMs, "zombie_unfetchable")
                    .str("job", id)
                    .u64("token", z.token)
                    .str("error", err);
                note(id + ": zombie artifacts unfetchable (" + err +
                     "); discarded");
                drop = true;
            }
        } else {
            const Artifact *stats =
                findArtifact(m, attempt_files::kStats);
            const Artifact *digest =
                findArtifact(m, attempt_files::kDigest);
            const bool produced =
                stats && stats->present &&
                (!_spec.fleet.digests ||
                 (digest && digest->present));
            if (z.exitResult.ok && produced) {
                if (_sched.acceptSuccess(z.jobIdx, z.token,
                                         nowMs - z.startMs)) {
                    std::string cerr2;
                    if (!commitArtifacts(id, z.aDir, m, true, 0,
                                         &cerr2))
                        fatal("fleet: cannot commit rescued "
                              "artifacts of ", id, ": ", cerr2);
                    ++h.jobsDone;
                    _journal.event(nowMs, "zombie_rescue")
                        .str("job", id)
                        .u64("token", z.token);
                    note(id + ": zombie attempt (token " +
                         std::to_string(z.token) +
                         ") finished and was rescued");
                } else {
                    _journal.event(nowMs, "zombie_reject")
                        .str("job", id)
                        .u64("token", z.token);
                    note(id + ": zombie result (token " +
                         std::to_string(z.token) +
                         ") rejected by fencing; not merged");
                }
            } else {
                // A zombie's failure adds nothing: its attempt was
                // written off at lease expiry.  Offer it anyway so
                // stale tokens are counted uniformly.
                (void)_sched.acceptFailure(
                    z.jobIdx, z.token, nowMs, nowMs - z.startMs,
                    "zombie attempt failed", false);
                _journal.event(nowMs, "zombie_fail")
                    .str("job", id)
                    .u64("token", z.token);
                note(id + ": zombie attempt (token " +
                     std::to_string(z.token) + ") failed; discarded");
            }
            drop = true;
        }

        if (drop)
            _zombies.erase(_zombies.begin() +
                           static_cast<long>(zi));
        else
            ++zi;
    }
}

void
FleetSupervisor::killZombies()
{
    for (Zombie &z : _zombies) {
        HostRuntime &h = _hosts[z.hostIdx];
        note(_sched.job(z.jobIdx).job.id +
             ": zombie attempt (token " + std::to_string(z.token) +
             ") force-killed at drain");
        h.transport->forceKill(*z.handle);
    }
    _zombies.clear(); // handle destructors reap what remains
}

void
FleetSupervisor::interruptAll()
{
    for (Slot &slot : _slots)
        if (slot.active)
            _hosts[slot.hostIdx].transport->interrupt(*slot.handle);
    for (Zombie &z : _zombies)
        _hosts[z.hostIdx].transport->interrupt(*z.handle);
}

FleetOutcome
FleetSupervisor::run()
{
    if (_opt.outDir.empty())
        fatal("fleet: no output directory");
    std::error_code ec;
    fs::create_directories(_opt.outDir + "/shards", ec);
    if (ec)
        fatal("cannot create ", _opt.outDir, ": ", ec.message());

    buildHosts();
    _journal.open(_opt.outDir + "/journal.jsonl");

    std::size_t totalSlots = 0;
    for (const HostRuntime &h : _hosts)
        totalSlots += static_cast<std::size_t>(h.spec.slots);
    note("sweep '" + _spec.name + "': " +
         std::to_string(_spec.jobs.size()) + " jobs on " +
         std::to_string(totalSlots) + " workers across " +
         std::to_string(_hosts.size()) + " host(s)");

    const auto t0 = std::chrono::steady_clock::now();
    auto nowMs = [&t0]() {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };
    _journal.event(nowMs(), "sweep_start")
        .str("name", _spec.name)
        .u64("jobs", _spec.jobs.size())
        .u64("hosts", _hosts.size())
        .u64("slots", totalSlots)
        .str("mode", workerModeName(_opt.mode));

    bool interrupted = false;
    double drainStartMs = -1.0;
    while (true) {
        const double now = nowMs();
        if (!interrupted && _opt.stopFlag &&
            _opt.stopFlag->load(std::memory_order_relaxed) != 0) {
            interrupted = true;
            _journal.event(now, "interrupt");
            note("interrupted; draining workers");
            interruptAll();
        }

        probeQuarantined(now);
        for (Slot &slot : _slots)
            pollSlot(slot, now);
        if (!interrupted) {
            for (Slot &slot : _slots)
                if (slot.active &&
                    _sched.leaseExpired(slot.jobIdx, now))
                    expireLease(slot, now);
        }
        pollZombies(now);

        // Terminal degradation: no host left to run anything.
        if (_fatal.empty() && !interrupted) {
            bool allDead = true;
            for (const HostRuntime &h : _hosts)
                if (h.health.state() != HostState::Dead) {
                    allDead = false;
                    break;
                }
            if (allDead) {
                const std::size_t n = _sched.failAllUnsettled(
                    "all hosts dead; job abandoned");
                _fatal = "all " + std::to_string(_hosts.size()) +
                         " host(s) dead; " + std::to_string(n) +
                         " unsettled job(s) abandoned";
                _journal.event(now, "fatal").str("error", _fatal);
                note("FATAL: " + _fatal);
                killZombies();
                for (Slot &slot : _slots) {
                    if (!slot.active)
                        continue;
                    _hosts[slot.hostIdx].transport->forceKill(
                        *slot.handle);
                    const std::size_t hostIdx = slot.hostIdx;
                    slot = Slot{};
                    slot.hostIdx = hostIdx;
                }
            }
        }

        if (!interrupted && _fatal.empty()) {
            for (Slot &slot : _slots) {
                if (slot.active || !hostUsable(slot.hostIdx))
                    continue;
                const std::size_t idx = _sched.claimNext(
                    now, _hosts[slot.hostIdx].spec.name);
                if (idx == FleetScheduler::npos)
                    break;
                launch(slot, idx, now);
            }
        }

        bool anyActive = false;
        for (const Slot &slot : _slots)
            if (slot.active)
                anyActive = true;
        const bool settled =
            _sched.allSettled() || interrupted || !_fatal.empty();
        if (settled && !anyActive) {
            if (_zombies.empty())
                break;
            if (drainStartMs < 0.0) {
                drainStartMs = now;
                for (Zombie &z : _zombies)
                    _hosts[z.hostIdx].transport->interrupt(
                        *z.handle);
            } else if (now - drainStartMs > _opt.zombieGraceMs) {
                killZombies();
                break;
            }
        } else {
            drainStartMs = -1.0;
        }
        if (_opt.statusIntervalMs > 0.0 &&
            now - _lastStatusMs >= _opt.statusIntervalMs) {
            _lastStatusMs = now;
            writeStatus(now, false);
        }
        std::this_thread::sleep_for(std::chrono::duration<double,
                                    std::milli>(_opt.pollMs));
    }

    FleetOutcome out;
    out.interrupted = interrupted;
    out.fatal = _fatal;
    out.done = _sched.doneCount();
    out.failed = _sched.failedCount();
    out.retries = _retries;
    out.resumes = _resumes;
    out.hangKills = _hangKills;
    out.leaseExpiries = _sched.leaseExpiries();
    out.zombieRejects = _sched.zombieRejects();
    out.zombieRescues = _sched.zombieRescues();
    out.hostsQuarantined = _quarantineEvents;
    out.reportPath = _opt.outDir + "/report.json";
    out.jobs = _sched.jobs();
    for (const HostRuntime &h : _hosts) {
        HostReport hr;
        hr.name = h.spec.name;
        hr.transport = h.spec.transport;
        hr.slots = h.spec.slots;
        hr.state = h.health.stateName();
        hr.quarantines = h.health.quarantines();
        hr.opFailures = h.health.opFailures();
        hr.jobsDone = h.jobsDone;
        hr.lastError = h.health.lastError();
        if (h.faulty) {
            hr.faulty = true;
            const FaultCounters &fc = h.faulty->counters();
            hr.faultsInjected = fc.drops + fc.delays + fc.dups +
                                fc.corrupts + fc.partitioned +
                                (fc.died ? 1 : 0);
        }
        if (h.health.state() == HostState::Dead)
            ++out.hostsDead;
        out.hosts.push_back(std::move(hr));
    }
    _journal.event(nowMs(), "sweep_end")
        .u64("done", out.done)
        .u64("failed", out.failed)
        .u64("retries", out.retries)
        .u64("resumes", out.resumes)
        .u64("hang_kills", out.hangKills)
        .u64("lease_expiries",
             static_cast<std::uint64_t>(out.leaseExpiries))
        .u64("zombie_rejects",
             static_cast<std::uint64_t>(out.zombieRejects))
        .u64("zombie_rescues",
             static_cast<std::uint64_t>(out.zombieRescues))
        .u64("hosts_quarantined",
             static_cast<std::uint64_t>(out.hostsQuarantined))
        .u64("hosts_dead",
             static_cast<std::uint64_t>(out.hostsDead))
        .b("interrupted", out.interrupted)
        .b("fatal", !out.fatal.empty());
    writeStatus(nowMs(), true);
    writeReport(out);
    note("sweep '" + _spec.name + "' " +
         (!out.fatal.empty()
              ? "aborted"
              : interrupted ? "interrupted" : "complete") +
         ": " + std::to_string(out.done) + " done, " +
         std::to_string(out.failed) + " failed, " +
         std::to_string(out.retries) + " retries (" +
         std::to_string(out.resumes) + " resumed), " +
         std::to_string(out.leaseExpiries) + " lease expiries, " +
         std::to_string(out.zombieRejects) + " zombie rejects, "
         "report " + out.reportPath);
    return out;
}

void
FleetSupervisor::writeStatus(double nowMs, bool final)
{
    const std::vector<JobProgress> &jobs = _sched.jobs();
    const double targetMs = _spec.seconds * 1000.0;

    // Per-job simulated progress: a running job's newest heartbeat
    // tick, a done job's full target, otherwise zero.
    std::vector<double> simMs(jobs.size(), 0.0);
    std::vector<double> rates(jobs.size(), 0.0);
    std::vector<const std::deque<double> *> windows(jobs.size(),
                                                    nullptr);
    for (const Slot &s : _slots) {
        if (!s.active || s.jobIdx == FleetScheduler::npos)
            continue;
        if (s.lastTickMs > 0.0)
            simMs[s.jobIdx] = s.lastTickMs;
        rates[s.jobIdx] = s.simRate;
        if (!s.rateWindow.empty())
            windows[s.jobIdx] = &s.rateWindow;
    }
    std::size_t nPending = 0, nRunning = 0, nBackoff = 0, nDone = 0,
                nFailed = 0;
    double simDone = 0.0, activeRate = 0.0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        switch (jobs[i].state) {
          case JobState::Pending: ++nPending; break;
          case JobState::Running: ++nRunning; break;
          case JobState::Backoff: ++nBackoff; break;
          case JobState::Done:
            ++nDone;
            simMs[i] = targetMs;
            break;
          case JobState::Failed: ++nFailed; break;
        }
        simDone += simMs[i];
        activeRate += rates[i];
    }
    // ETA from the fleet's current aggregate rate; failed jobs are
    // out of the race, so their remaining sim time does not count.
    const double remaining =
        targetMs * static_cast<double>(jobs.size() - nFailed) -
        simDone;
    const double etaMs =
        activeRate > 0.0 && remaining > 0.0
            ? remaining / activeRate * 1000.0
            : (remaining <= 0.0 ? 0.0 : -1.0);

    std::ostringstream os;
    os << "{\n"
       << "  \"kind\": \"vip-fleet-status\",\n"
       << "  \"schemaVersion\": 2,\n"
       << "  \"name\": \"" << esc(_spec.name) << "\",\n"
       << "  \"final\": " << (final ? "true" : "false") << ",\n"
       << "  \"wall_ms\": " << fmtNum(nowMs) << ",\n"
       << "  \"jobs\": {\n"
       << "    \"total\": " << jobs.size() << ",\n"
       << "    \"pending\": " << nPending << ",\n"
       << "    \"running\": " << nRunning << ",\n"
       << "    \"backoff\": " << nBackoff << ",\n"
       << "    \"done\": " << nDone << ",\n"
       << "    \"failed\": " << nFailed << "\n  },\n";
    os << "  \"throughput\": {\n"
       << "    \"sim_target_ms_per_job\": " << fmtNum(targetMs)
       << ",\n"
       << "    \"sim_ms_done\": " << fmtNum(simDone) << ",\n"
       << "    \"sim_ms_per_wall_s\": " << fmtNum(activeRate)
       << ",\n"
       << "    \"eta_ms\": " << fmtNum(etaMs) << "\n  },\n";
    os << "  \"job_detail\": [\n";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobProgress &p = jobs[i];
        os << "    {\"id\": \"" << esc(p.job.id) << "\", \"state\": "
           << "\"" << jobStateName(p.state) << "\", \"attempts\": "
           << p.attempts << ", \"sim_ms\": " << fmtNum(simMs[i]);
        if (rates[i] > 0.0)
            os << ", \"sim_ms_per_wall_s\": " << fmtNum(rates[i]);
        if (!p.host.empty())
            os << ", \"host\": \"" << esc(p.host) << "\"";
        // Per-shard throughput window (newest last) plus the
        // steady-state verdict: a running shard is judged on the
        // relative spread of its rate window; a committed shard
        // reports the tick its own detector latched (if any).
        if (const std::deque<double> *w = windows[i]) {
            os << ", \"rate_window\": [";
            for (std::size_t k = 0; k < w->size(); ++k)
                os << (k ? ", " : "") << fmtNum((*w)[k]);
            os << "]";
            double lo = (*w)[0], hi = (*w)[0], sum = 0.0;
            for (double v : *w) {
                lo = std::min(lo, v);
                hi = std::max(hi, v);
                sum += v;
            }
            const double mean =
                sum / static_cast<double>(w->size());
            os << ", \"rate_steady\": "
               << (w->size() >= 8 && mean > 0.0 &&
                           (hi - lo) <= 0.5 * mean
                       ? "true"
                       : "false");
        }
        const double steadyTick =
            i < _jobSteadyTickMs.size() ? _jobSteadyTickMs[i] : -1.0;
        if (steadyTick >= 0.0)
            os << ", \"steady_tick_ms\": " << fmtNum(steadyTick);
        os << "}" << (i + 1 < jobs.size() ? ",\n" : "\n");
    }
    os << "  ],\n";
    os << "  \"hosts\": [\n";
    for (std::size_t i = 0; i < _hosts.size(); ++i) {
        const HostRuntime &h = _hosts[i];
        os << "    {\"name\": \"" << esc(h.spec.name)
           << "\", \"state\": \"" << h.health.stateName()
           << "\", \"quarantines\": " << h.health.quarantines()
           << ", \"op_failures\": " << h.health.opFailures()
           << ", \"jobs_done\": " << h.jobsDone;
        if (h.faulty) {
            const FaultCounters &fc = h.faulty->counters();
            os << ", \"faults_injected\": "
               << (fc.drops + fc.delays + fc.dups + fc.corrupts +
                   fc.partitioned + (fc.died ? 1 : 0));
        }
        os << "}" << (i + 1 < _hosts.size() ? ",\n" : "\n");
    }
    os << "  ]\n}\n";

    std::string err;
    if (!writeFileAtomic(_opt.outDir + "/fleet-status.json",
                         os.str(), &err))
        note("cannot write fleet-status.json: " + err);
}

void
FleetSupervisor::writeReport(const FleetOutcome &out) const
{
    // Aggregate every completed shard's committed stats.json.
    std::vector<StatsFile> parsed;
    parsed.reserve(out.jobs.size());
    std::vector<const StatsFile *> shards;
    for (const JobProgress &p : out.jobs) {
        if (p.state != JobState::Done)
            continue;
        const ShardPaths paths = shardPaths(_opt.outDir, p.job.id);
        std::ifstream in(paths.statsJson);
        if (!in) {
            note(p.job.id + ": done but " + paths.statsJson +
                 " is unreadable; excluded from the aggregate");
            continue;
        }
        try {
            parsed.push_back(parseStatsJson(in));
        } catch (const std::exception &e) {
            note(p.job.id + ": stats.json rejected (" + e.what() +
                 "); excluded from the aggregate");
        }
    }
    for (const StatsFile &f : parsed)
        shards.push_back(&f);
    const auto agg = aggregateStats(shards);

    std::ostringstream os;
    const FleetPolicy &pol = _spec.fleet;
    os << "{\n"
       << "  \"kind\": \"vip-fleet-report\",\n"
       << "  \"schemaVersion\": 2,\n"
       << "  \"name\": \"" << esc(_spec.name) << "\",\n"
       << "  \"seconds\": " << fmtNum(_spec.seconds) << ",\n"
       << "  \"mode\": \"" << workerModeName(_opt.mode) << "\",\n"
       << "  \"interrupted\": "
       << (out.interrupted ? "true" : "false") << ",\n";
    if (!out.fatal.empty())
        os << "  \"fatal\": \"" << esc(out.fatal) << "\",\n";
    os << "  \"policy\": {\n"
       << "    \"workers\": " << pol.workers << ",\n"
       << "    \"max_attempts\": " << pol.maxAttempts << ",\n"
       << "    \"backoff_base_ms\": " << fmtNum(pol.backoffBaseMs)
       << ",\n"
       << "    \"backoff_cap_ms\": " << fmtNum(pol.backoffCapMs)
       << ",\n"
       << "    \"backoff_jitter\": "
       << (pol.backoffJitter ? "true" : "false") << ",\n"
       << "    \"lease_ms\": " << fmtNum(pol.leaseMs) << ",\n"
       << "    \"heartbeat_deadline_ms\": "
       << fmtNum(pol.heartbeatDeadlineMs) << ",\n"
       << "    \"heartbeat_interval_ms\": "
       << fmtNum(pol.heartbeatIntervalMs) << ",\n"
       << "    \"heartbeat_grace_ms\": "
       << fmtNum(_opt.heartbeatGraceMsOverride >= 0.0
                     ? _opt.heartbeatGraceMsOverride
                     : pol.heartbeatGraceMs)
       << ",\n"
       << "    \"quarantine_after\": " << pol.quarantineAfter
       << ",\n"
       << "    \"probe_interval_ms\": "
       << fmtNum(pol.probeIntervalMs) << ",\n"
       << "    \"fetch_retries\": " << pol.fetchRetries << ",\n"
       << "    \"checkpoint_every_ms\": "
       << fmtNum(pol.checkpointEveryMs) << ",\n"
       << "    \"resume\": " << (pol.resume ? "true" : "false")
       << "\n  },\n";
    os << "  \"summary\": {\n"
       << "    \"jobs\": " << out.jobs.size() << ",\n"
       << "    \"done\": " << out.done << ",\n"
       << "    \"failed\": " << out.failed << ",\n"
       << "    \"retries\": " << out.retries << ",\n"
       << "    \"resumes\": " << out.resumes << ",\n"
       << "    \"hang_kills\": " << out.hangKills << ",\n"
       << "    \"lease_expiries\": " << out.leaseExpiries << ",\n"
       << "    \"zombie_rejects\": " << out.zombieRejects << ",\n"
       << "    \"zombie_rescues\": " << out.zombieRescues << ",\n"
       << "    \"hosts_quarantined\": " << out.hostsQuarantined
       << ",\n"
       << "    \"hosts_dead\": " << out.hostsDead << ",\n"
       << "    \"aggregated_shards\": " << shards.size()
       << "\n  },\n";

    os << "  \"hosts\": [\n";
    for (std::size_t i = 0; i < out.hosts.size(); ++i) {
        const HostReport &h = out.hosts[i];
        os << "    {\n"
           << "      \"name\": \"" << esc(h.name) << "\",\n"
           << "      \"transport\": \"" << esc(h.transport)
           << "\",\n"
           << "      \"slots\": " << h.slots << ",\n"
           << "      \"state\": \"" << esc(h.state) << "\",\n"
           << "      \"quarantines\": " << h.quarantines << ",\n"
           << "      \"op_failures\": " << h.opFailures << ",\n"
           << "      \"jobs_done\": " << h.jobsDone;
        if (h.faulty)
            os << ",\n      \"faults_injected\": "
               << h.faultsInjected;
        if (!h.lastError.empty())
            os << ",\n      \"last_error\": \"" << esc(h.lastError)
               << "\"";
        os << "\n    }" << (i + 1 < out.hosts.size() ? ",\n" : "\n");
    }
    os << "  ],\n";

    // Explicit enumerations of reassigned and quarantined work, so
    // degradation is auditable without walking every job record.
    os << "  \"reassigned_jobs\": [";
    {
        bool first = true;
        for (const JobProgress &p : out.jobs) {
            if (p.leaseExpiries == 0)
                continue;
            os << (first ? "" : ", ") << "\"" << esc(p.job.id)
               << "\"";
            first = false;
        }
    }
    os << "],\n";
    os << "  \"quarantined_hosts\": [";
    {
        bool first = true;
        for (const HostReport &h : out.hosts) {
            if (h.quarantines == 0)
                continue;
            os << (first ? "" : ", ") << "\"" << esc(h.name)
               << "\"";
            first = false;
        }
    }
    os << "],\n";

    auto jobJson = [&os](const JobProgress &p, bool failedOnly) {
        os << "    {\n"
           << "      \"id\": \"" << esc(p.job.id) << "\",\n"
           << "      \"config\": \"" << esc(p.job.config) << "\",\n"
           << "      \"workload\": \"" << esc(p.job.workload)
           << "\",\n"
           << "      \"seed\": " << p.job.seed << ",\n";
        if (!p.job.faultPlan.empty())
            os << "      \"fault_plan\": \"" << esc(p.job.faultPlan)
               << "\",\n";
        os << "      \"state\": \"" << jobStateName(p.state)
           << "\",\n"
           << "      \"attempts\": " << p.attempts << ",\n"
           << "      \"resumed\": "
           << (p.everResumed ? "true" : "false") << ",\n";
        if (!p.host.empty())
            os << "      \"host\": \"" << esc(p.host) << "\",\n";
        if (p.leaseExpiries > 0)
            os << "      \"lease_expiries\": " << p.leaseExpiries
               << ",\n";
        if (p.zombieRejects > 0)
            os << "      \"zombie_rejects\": " << p.zombieRejects
               << ",\n";
        if (p.rescued)
            os << "      \"rescued\": true,\n";
        os << "      \"wall_ms\": " << fmtNum(p.wallMs);
        if (!failedOnly && p.state == JobState::Done)
            os << ",\n      \"stats\": \"shards/" << esc(p.job.id)
               << "/stats.json\"";
        if (!p.lastError.empty())
            os << ",\n      \"last_error\": \"" << esc(p.lastError)
               << "\"";
        if (!p.history.empty()) {
            os << ",\n      \"history\": [";
            for (std::size_t i = 0; i < p.history.size(); ++i)
                os << (i ? ", " : "") << "\"" << esc(p.history[i])
                   << "\"";
            os << "]";
        }
        os << "\n    }";
    };

    os << "  \"jobs\": [\n";
    for (std::size_t i = 0; i < out.jobs.size(); ++i) {
        jobJson(out.jobs[i], false);
        os << (i + 1 < out.jobs.size() ? ",\n" : "\n");
    }
    os << "  ],\n";

    os << "  \"failed_jobs\": [\n";
    bool first = true;
    for (const JobProgress &p : out.jobs) {
        if (p.state != JobState::Failed)
            continue;
        if (!first)
            os << ",\n";
        first = false;
        jobJson(p, true);
    }
    os << (first ? "" : "\n") << "  ],\n";

    os << "  \"aggregate\": ";
    writeAggregateJson(os, agg, "  ");
    os << "\n}\n";

    std::string err;
    if (!writeFileAtomic(out.reportPath, os.str(), &err))
        fatal("cannot write ", out.reportPath, ": ", err);

    std::ostringstream as;
    writeAggregateDocument(as, agg, shards.size(), _spec.name);
    if (!writeFileAtomic(_opt.outDir + "/aggregate.json", as.str(),
                         &err))
        fatal("cannot write ", _opt.outDir, "/aggregate.json: ",
              err);
}

} // namespace fleet
} // namespace vip
