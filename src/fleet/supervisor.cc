#include "fleet/supervisor.hh"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>
#include <utility>

#include "core/simulation.hh"
#include "fault/fault_plan.hh"
#include "obs/provenance.hh"
#include "obs/stats_io.hh"
#include "obs/stats_merge.hh"
#include "sim/audit.hh"
#include "sim/logging.hh"

namespace fs = std::filesystem;

namespace vip
{
namespace fleet
{

namespace
{

std::string
esc(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
fmtNum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

bool
fileExists(const std::string &path)
{
    return ::access(path.c_str(), F_OK) == 0;
}

/** Size of @p path in bytes, or -1 when it does not exist (yet). */
long
statSize(const std::string &path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0)
        return -1;
    return static_cast<long>(st.st_size);
}

/**
 * The shard's simulated progress: the tick_ms column (first field) of
 * the newest non-comment row of its heartbeat CSV, or -1 before the
 * first sample lands.  Heartbeat files are small (hundreds of rows),
 * so rereading on growth is cheap.
 */
double
readLastTickMs(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return -1.0;
    std::string line, last;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const char c = line[0];
        if ((c < '0' || c > '9') && c != '-' && c != '.')
            continue; // the "tick_ms,..." header row
        last = line;
    }
    if (last.empty())
        return -1.0;
    return std::strtod(last.c_str(), nullptr);
}

} // namespace

const char *
workerModeName(WorkerMode m)
{
    switch (m) {
      case WorkerMode::Process: return "process";
      case WorkerMode::Thread: return "thread";
    }
    return "?";
}

ShardPaths
shardPaths(const std::string &outDir, const std::string &jobId)
{
    ShardPaths p;
    p.dir = outDir + "/shards/" + jobId;
    p.statsJson = p.dir + "/stats.json";
    p.metricsCsv = p.dir + "/metrics.csv";
    p.pmDir = p.dir + "/pm";
    p.checkpoint = p.pmDir + "/checkpoint.vips";
    p.digest = p.dir + "/digest.dig";
    p.log = p.dir + "/log.txt";
    return p;
}

std::vector<std::string>
workerArgs(const JobSpec &spec, const FleetJob &job,
           const ShardPaths &paths, bool resume)
{
    const FleetPolicy &pol = spec.fleet;
    std::vector<std::string> a;
    a.push_back("--workload");
    a.push_back(job.workload);
    a.push_back("--config");
    a.push_back(job.config);
    a.push_back("--seed");
    a.push_back(std::to_string(job.seed));
    a.push_back("--seconds");
    a.push_back(fmtNum(spec.seconds));
    if (!job.faultPlan.empty()) {
        a.push_back("--fault-plan");
        a.push_back(job.faultPlan);
    }
    if (!spec.audit.empty()) {
        a.push_back("--audit");
        a.push_back(spec.audit);
    }
    if (pol.digests) {
        a.push_back("--digest-out");
        a.push_back(paths.digest);
    }
    if (pol.heartbeatIntervalMs > 0.0) {
        a.push_back("--metrics-out");
        a.push_back(paths.metricsCsv);
        a.push_back("--metrics-interval-ms");
        a.push_back(fmtNum(pol.heartbeatIntervalMs));
    }
    a.push_back("--stats-out");
    a.push_back(paths.statsJson);
    a.push_back("--postmortem-dir");
    a.push_back(paths.pmDir);
    if (pol.checkpointEveryMs > 0.0) {
        a.push_back("--checkpoint-every-ms");
        a.push_back(fmtNum(pol.checkpointEveryMs));
    }
    if (resume) {
        a.push_back("--restore");
        a.push_back(paths.checkpoint);
    }
    for (const auto &x : spec.extraArgs)
        a.push_back(x);
    return a;
}

/**
 * One in-process attempt's shared state.  The worker thread writes
 * ok/error, then publishes with a release store of finished; the
 * supervisor joins after an acquire load, so the plain fields are
 * safely visible.
 */
struct ThreadTask
{
    std::thread thread;
    std::atomic<int> cancel{0};    ///< the job's interrupt flag
    std::atomic<bool> finished{false};
    bool ok = false;
    std::string error;
};

namespace
{

/** The thread-backend worker body: mirrors vip_sim's flag semantics
 *  exactly (same outputs, same digest-visible side effects), so a
 *  thread-mode shard is bit-identical to a process-mode one. */
void
runThreadAttempt(double seconds, std::string audit, FleetPolicy pol,
                 FleetJob job, ShardPaths paths, bool resume,
                 ThreadTask *task)
{
    try {
        SocConfig cfg;
        cfg.simSeconds = seconds;
        cfg.seed = job.seed;
        cfg.system = configByCliName(job.config);
        if (!job.faultPlan.empty())
            cfg.fault = FaultPlan::parse(job.faultPlan);
        if (!audit.empty())
            cfg.audit = AuditConfig::parse(audit);
        if (pol.digests && !cfg.audit.enabled())
            cfg.audit = AuditConfig::parse("periodic:1");
        if (pol.heartbeatIntervalMs > 0.0) {
            cfg.metrics.out = paths.metricsCsv;
            cfg.metrics.intervalMs = pol.heartbeatIntervalMs;
        }
        cfg.statsOut = paths.statsJson;
        cfg.postmortemDir = paths.pmDir;
        if (pol.checkpointEveryMs > 0.0)
            cfg.checkpointEveryMs = pol.checkpointEveryMs;
        if (resume)
            cfg.restorePath = paths.checkpoint;
        cfg.interruptFlag = &task->cancel;

        Simulation sim(cfg, workloadByName(job.workload));
        RunStats s = sim.run();

        {
            std::ofstream out(paths.statsJson);
            if (!out)
                fatal("cannot write ", paths.statsJson);
            sim.writeStatsJson(out);
        }
        if (pol.digests) {
            std::ofstream out(paths.digest);
            if (!out)
                fatal("cannot write ", paths.digest);
            std::vector<std::string> meta{
                "workload=" + job.workload, "config=" + job.config,
                "seed=" + std::to_string(cfg.seed)};
            for (const auto &l : provenanceMetaLines())
                meta.push_back(l);
            sim.auditor().writeDigestStream(out, meta);
        }

        if (sim.interrupted()) {
            task->error = "interrupted (graceful cancel, signal " +
                          std::to_string(sim.interruptSignal()) + ")";
        } else if (s.auditViolations > 0) {
            task->error = "audit violations: " +
                          std::to_string(s.auditViolations);
        } else {
            task->ok = true;
        }
    } catch (const std::exception &e) {
        task->error = std::string("exception: ") + e.what();
    } catch (...) {
        task->error = "unknown exception";
    }
    task->finished.store(true, std::memory_order_release);
}

} // namespace

/** One worker seat: at most one running attempt. */
struct FleetSupervisor::Slot
{
    bool active = false;
    std::size_t jobIdx = FleetScheduler::npos;
    double startMs = 0.0;

    /** @{ heartbeat tracking */
    long lastSize = -1;     ///< newest observed CSV size
    double lastBeatMs = 0.0; ///< wall time the CSV last changed
    /** @} */

    bool chaosKilled = false;
    bool hangKilled = false;

    pid_t pid = -1;                   ///< process backend
    std::unique_ptr<ThreadTask> task; ///< thread backend
};

FleetSupervisor::FleetSupervisor(JobSpec spec, FleetOptions opt)
    : _spec(std::move(spec)), _opt(std::move(opt)),
      _sched(_spec.jobs, _spec.fleet)
{
}

FleetSupervisor::~FleetSupervisor() = default;

void
FleetSupervisor::note(const std::string &line) const
{
    if (_opt.verbose)
        std::fprintf(stderr, "[fleet] %s\n", line.c_str());
}

void
FleetSupervisor::launch(Slot &slot, std::size_t jobIdx, double nowMs)
{
    const JobProgress &p = _sched.job(jobIdx);
    const ShardPaths paths = shardPaths(_opt.outDir, p.job.id);
    const bool resume = p.resumeNext;

    std::error_code ec;
    fs::create_directories(paths.pmDir, ec);
    if (ec)
        fatal("cannot create shard directory ", paths.pmDir, ": ",
              ec.message());

    slot = Slot{};
    slot.active = true;
    slot.jobIdx = jobIdx;
    slot.startMs = nowMs;
    slot.lastSize = statSize(paths.metricsCsv);
    slot.lastBeatMs = nowMs;

    if (p.attempts > 1)
        ++_retries;
    if (resume)
        ++_resumes;
    note(p.job.id + ": attempt " + std::to_string(p.attempts) +
         (resume ? " (resuming from " + paths.checkpoint + ")" : ""));

    if (_opt.mode == WorkerMode::Thread) {
        slot.task = std::make_unique<ThreadTask>();
        ThreadTask *t = slot.task.get();
        t->thread = std::thread(runThreadAttempt, _spec.seconds,
                                _spec.audit, _spec.fleet, p.job,
                                paths, resume, t);
        return;
    }

    // Process backend: fork/exec vip_sim with stdout+stderr appended
    // to the shard log (one stream across attempts).
    std::vector<std::string> args = workerArgs(_spec, p.job, paths,
                                               resume);
    {
        std::ofstream log(paths.log, std::ios::app);
        log << "=== attempt " << p.attempts << " ===\n";
    }
    const int logFd = ::open(paths.log.c_str(),
                             O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (logFd < 0)
        fatal("cannot open ", paths.log, ": ",
              std::strerror(errno));

    std::vector<char *> argv;
    argv.push_back(const_cast<char *>(_opt.vipSimPath.c_str()));
    for (auto &a : args)
        argv.push_back(const_cast<char *>(a.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(logFd);
        fatal("fork failed: ", std::strerror(errno));
    }
    if (pid == 0) {
        ::dup2(logFd, 1);
        ::dup2(logFd, 2);
        ::close(logFd);
        ::execv(argv[0], argv.data());
        std::fprintf(stderr, "execv %s failed: %s\n", argv[0],
                     std::strerror(errno));
        ::_exit(127);
    }
    ::close(logFd);
    slot.pid = pid;
}

void
FleetSupervisor::finish(Slot &slot, double nowMs, bool ok,
                        const std::string &why)
{
    const std::size_t idx = slot.jobIdx;
    const double elapsed = nowMs - slot.startMs;
    const std::string id = _sched.job(idx).job.id;
    if (ok) {
        _sched.onSuccess(idx, elapsed);
        note(id + ": done (" + fmtNum(elapsed) + " wall ms)");
    } else {
        const ShardPaths paths = shardPaths(_opt.outDir, id);
        const bool canResume = fileExists(paths.checkpoint);
        _sched.onFailure(idx, nowMs, elapsed, why, canResume);
        const JobProgress &p = _sched.job(idx);
        note(id + ": " + why + " -> " + jobStateName(p.state) +
             (p.state == JobState::Backoff
                  ? (p.resumeNext ? " (will resume)"
                                  : " (will restart)")
                  : ""));
    }
    slot = Slot{};
}

void
FleetSupervisor::poll(Slot &slot, double nowMs)
{
    if (!slot.active)
        return;
    const FleetPolicy &pol = _spec.fleet;
    const JobProgress &p = _sched.job(slot.jobIdx);
    const ShardPaths paths = shardPaths(_opt.outDir, p.job.id);

    // 1. Completion.
    if (_opt.mode == WorkerMode::Process) {
        int status = 0;
        const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
        if (r == slot.pid) {
            const bool ok =
                WIFEXITED(status) && WEXITSTATUS(status) == 0;
            std::string why;
            if (!ok) {
                if (WIFSIGNALED(status)) {
                    const int sig = WTERMSIG(status);
                    why = slot.chaosKilled
                              ? "chaos SIGKILL (injected)"
                              : slot.hangKilled
                                    ? "hung (no heartbeat), killed"
                                    : "killed by signal " +
                                          std::to_string(sig);
                } else {
                    why = "exit code " +
                          std::to_string(WEXITSTATUS(status));
                }
            }
            finish(slot, nowMs, ok, why);
            return;
        }
    } else {
        ThreadTask *t = slot.task.get();
        if (t->finished.load(std::memory_order_acquire)) {
            t->thread.join();
            std::string why = t->error.empty() ? "failed" : t->error;
            if (slot.hangKilled)
                why = "hung (no heartbeat), cancelled: " + why;
            finish(slot, nowMs, t->ok, why);
            return;
        }
    }

    // 2. Heartbeat: any change of the streamed CSV is a beat (a
    //    fresh attempt truncates, a resumed one appends — both move
    //    the size).
    const long sz = statSize(paths.metricsCsv);
    if (sz >= 0 && sz != slot.lastSize) {
        slot.lastSize = sz;
        slot.lastBeatMs = nowMs;

        // Chaos injection keys on *simulated* progress so a ring
        // checkpoint older than the kill point provably exists.
        if (!_chaosFired && _opt.mode == WorkerMode::Process &&
            !_opt.killJobId.empty() && p.job.id == _opt.killJobId &&
            p.attempts == 1) {
            const double tick = readLastTickMs(paths.metricsCsv);
            if (tick >= _opt.killAtSimMs) {
                _chaosFired = true;
                slot.chaosKilled = true;
                ::kill(slot.pid, SIGKILL);
                note(p.job.id + ": chaos SIGKILL at " +
                     fmtNum(tick) + " simulated ms");
            }
        }
    }

    // 3. Liveness watchdog.
    if (pol.heartbeatDeadlineMs > 0.0 &&
        pol.heartbeatIntervalMs > 0.0 && !slot.hangKilled &&
        !slot.chaosKilled &&
        nowMs - slot.lastBeatMs > pol.heartbeatDeadlineMs) {
        slot.hangKilled = true;
        ++_hangKills;
        if (_opt.mode == WorkerMode::Process) {
            ::kill(slot.pid, SIGKILL);
        } else {
            // No safe way to kill a thread: request a graceful stop
            // and keep waiting (the simulator always reaches a
            // quiescent point unless the process itself is wedged).
            slot.task->cancel.store(SIGTERM,
                                    std::memory_order_relaxed);
        }
        note(p.job.id + ": no heartbeat for " +
             fmtNum(nowMs - slot.lastBeatMs) + " wall ms; killed as "
             "hung");
    }
}

void
FleetSupervisor::interruptAll()
{
    for (Slot &slot : _slots) {
        if (!slot.active)
            continue;
        if (_opt.mode == WorkerMode::Process)
            ::kill(slot.pid, SIGTERM);
        else
            slot.task->cancel.store(SIGTERM,
                                    std::memory_order_relaxed);
    }
}

FleetOutcome
FleetSupervisor::run()
{
    if (_opt.outDir.empty())
        fatal("fleet: no output directory");
    if (_opt.mode == WorkerMode::Process) {
        if (_opt.vipSimPath.empty())
            fatal("fleet: process mode needs the vip_sim path");
        if (::access(_opt.vipSimPath.c_str(), X_OK) != 0)
            fatal("fleet: worker binary ", _opt.vipSimPath,
                  " is not executable: ", std::strerror(errno));
    }
    std::error_code ec;
    fs::create_directories(_opt.outDir + "/shards", ec);
    if (ec)
        fatal("cannot create ", _opt.outDir, ": ", ec.message());

    note("sweep '" + _spec.name + "': " +
         std::to_string(_spec.jobs.size()) + " jobs on " +
         std::to_string(_spec.fleet.workers) + " " +
         workerModeName(_opt.mode) + " workers");

    const auto t0 = std::chrono::steady_clock::now();
    auto nowMs = [&t0]() {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - t0)
            .count();
    };

    _slots.clear();
    _slots.resize(static_cast<std::size_t>(_spec.fleet.workers));

    bool interrupted = false;
    while (true) {
        const double now = nowMs();
        if (!interrupted && _opt.stopFlag &&
            _opt.stopFlag->load(std::memory_order_relaxed) != 0) {
            interrupted = true;
            note("interrupted; draining workers");
            interruptAll();
        }
        for (Slot &slot : _slots)
            poll(slot, now);
        if (!interrupted) {
            for (Slot &slot : _slots) {
                if (slot.active)
                    continue;
                const std::size_t idx = _sched.claimNext(now);
                if (idx == FleetScheduler::npos)
                    break;
                launch(slot, idx, now);
            }
        }
        const bool anyActive = [this]() {
            for (const Slot &slot : _slots)
                if (slot.active)
                    return true;
            return false;
        }();
        if ((_sched.allSettled() || interrupted) && !anyActive)
            break;
        std::this_thread::sleep_for(std::chrono::duration<double,
                                    std::milli>(_opt.pollMs));
    }

    FleetOutcome out;
    out.interrupted = interrupted;
    out.done = _sched.doneCount();
    out.failed = _sched.failedCount();
    out.retries = _retries;
    out.resumes = _resumes;
    out.hangKills = _hangKills;
    out.reportPath = _opt.outDir + "/report.json";
    out.jobs = _sched.jobs();
    writeReport(out);
    note("sweep '" + _spec.name + "' " +
         (interrupted ? "interrupted" : "complete") + ": " +
         std::to_string(out.done) + " done, " +
         std::to_string(out.failed) + " failed, " +
         std::to_string(out.retries) + " retries (" +
         std::to_string(out.resumes) + " resumed), report " +
         out.reportPath);
    return out;
}

void
FleetSupervisor::writeReport(const FleetOutcome &out) const
{
    // Aggregate every completed shard's stats.json.
    std::vector<StatsFile> parsed;
    parsed.reserve(out.jobs.size());
    std::vector<const StatsFile *> shards;
    for (const JobProgress &p : out.jobs) {
        if (p.state != JobState::Done)
            continue;
        const ShardPaths paths = shardPaths(_opt.outDir, p.job.id);
        std::ifstream in(paths.statsJson);
        if (!in) {
            note(p.job.id + ": done but " + paths.statsJson +
                 " is unreadable; excluded from the aggregate");
            continue;
        }
        try {
            parsed.push_back(parseStatsJson(in));
        } catch (const std::exception &e) {
            note(p.job.id + ": stats.json rejected (" + e.what() +
                 "); excluded from the aggregate");
        }
    }
    for (const StatsFile &f : parsed)
        shards.push_back(&f);
    const auto agg = aggregateStats(shards);

    std::ofstream os(out.reportPath);
    if (!os)
        fatal("cannot write ", out.reportPath);
    const FleetPolicy &pol = _spec.fleet;
    os << "{\n"
       << "  \"kind\": \"vip-fleet-report\",\n"
       << "  \"schemaVersion\": 1,\n"
       << "  \"name\": \"" << esc(_spec.name) << "\",\n"
       << "  \"seconds\": " << fmtNum(_spec.seconds) << ",\n"
       << "  \"mode\": \"" << workerModeName(_opt.mode) << "\",\n"
       << "  \"interrupted\": "
       << (out.interrupted ? "true" : "false") << ",\n";
    os << "  \"policy\": {\n"
       << "    \"workers\": " << pol.workers << ",\n"
       << "    \"max_attempts\": " << pol.maxAttempts << ",\n"
       << "    \"backoff_base_ms\": " << fmtNum(pol.backoffBaseMs)
       << ",\n"
       << "    \"backoff_cap_ms\": " << fmtNum(pol.backoffCapMs)
       << ",\n"
       << "    \"heartbeat_deadline_ms\": "
       << fmtNum(pol.heartbeatDeadlineMs) << ",\n"
       << "    \"heartbeat_interval_ms\": "
       << fmtNum(pol.heartbeatIntervalMs) << ",\n"
       << "    \"checkpoint_every_ms\": "
       << fmtNum(pol.checkpointEveryMs) << ",\n"
       << "    \"resume\": " << (pol.resume ? "true" : "false")
       << "\n  },\n";
    os << "  \"summary\": {\n"
       << "    \"jobs\": " << out.jobs.size() << ",\n"
       << "    \"done\": " << out.done << ",\n"
       << "    \"failed\": " << out.failed << ",\n"
       << "    \"retries\": " << out.retries << ",\n"
       << "    \"resumes\": " << out.resumes << ",\n"
       << "    \"hang_kills\": " << out.hangKills << ",\n"
       << "    \"aggregated_shards\": " << shards.size()
       << "\n  },\n";

    auto jobJson = [&os](const JobProgress &p, bool failedOnly) {
        os << "    {\n"
           << "      \"id\": \"" << esc(p.job.id) << "\",\n"
           << "      \"config\": \"" << esc(p.job.config) << "\",\n"
           << "      \"workload\": \"" << esc(p.job.workload)
           << "\",\n"
           << "      \"seed\": " << p.job.seed << ",\n";
        if (!p.job.faultPlan.empty())
            os << "      \"fault_plan\": \"" << esc(p.job.faultPlan)
               << "\",\n";
        os << "      \"state\": \"" << jobStateName(p.state)
           << "\",\n"
           << "      \"attempts\": " << p.attempts << ",\n"
           << "      \"resumed\": "
           << (p.everResumed ? "true" : "false") << ",\n"
           << "      \"wall_ms\": " << fmtNum(p.wallMs);
        if (!failedOnly && p.state == JobState::Done)
            os << ",\n      \"stats\": \"shards/" << esc(p.job.id)
               << "/stats.json\"";
        if (!p.lastError.empty())
            os << ",\n      \"last_error\": \"" << esc(p.lastError)
               << "\"";
        if (!p.history.empty()) {
            os << ",\n      \"history\": [";
            for (std::size_t i = 0; i < p.history.size(); ++i)
                os << (i ? ", " : "") << "\"" << esc(p.history[i])
                   << "\"";
            os << "]";
        }
        os << "\n    }";
    };

    os << "  \"jobs\": [\n";
    for (std::size_t i = 0; i < out.jobs.size(); ++i) {
        jobJson(out.jobs[i], false);
        os << (i + 1 < out.jobs.size() ? ",\n" : "\n");
    }
    os << "  ],\n";

    os << "  \"failed_jobs\": [\n";
    bool first = true;
    for (const JobProgress &p : out.jobs) {
        if (p.state != JobState::Failed)
            continue;
        if (!first)
            os << ",\n";
        first = false;
        jobJson(p, true);
    }
    os << (first ? "" : "\n") << "  ],\n";

    os << "  \"aggregate\": ";
    writeAggregateJson(os, agg, "  ");
    os << "\n}\n";
}

} // namespace fleet
} // namespace vip
