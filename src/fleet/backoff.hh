/**
 * @file
 * Retry/backoff arithmetic for the fleet supervisor, separated so the
 * math is unit-testable without spawning anything.
 */

#ifndef VIP_FLEET_BACKOFF_HH
#define VIP_FLEET_BACKOFF_HH

#include "fleet/job_spec.hh"

namespace vip
{
namespace fleet
{

/**
 * Wall-clock delay before retrying a job that has failed
 * @p failedAttempts times (>= 1): min(cap, base * 2^(failures-1)).
 * Saturates at the cap — the shift is computed in floating point, so
 * absurd failure counts cannot overflow.
 */
inline double
backoffDelayMs(const FleetPolicy &p, int failedAttempts)
{
    if (failedAttempts < 1 || p.backoffBaseMs <= 0.0)
        return 0.0;
    // 2^53 dwarfs any real cap; stop doubling well before overflow.
    double delay = p.backoffBaseMs;
    for (int i = 1; i < failedAttempts && delay < p.backoffCapMs; ++i)
        delay *= 2.0;
    return delay < p.backoffCapMs ? delay : p.backoffCapMs;
}

/**
 * Deterministic unit draw in [0, 1) for retry @p failedAttempts of
 * @p jobId: FNV-1a over the id and attempt number, mixed through
 * splitmix64.  The same (job, attempt) always jitters identically —
 * sweeps stay reproducible — while distinct jobs failing together
 * spread out instead of retrying in lockstep.
 */
inline double
backoffUnitDraw(const std::string &jobId, int failedAttempts)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : jobId) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    h ^= static_cast<std::uint64_t>(failedAttempts);
    h *= 0x100000001b3ull;
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
}

/**
 * Decorrelated-jitter delay (the AWS "decorrelated jitter" recipe,
 * seeded): d_k = min(cap, base + u_k * (3 * d_{k-1} - base)), with
 * d_0 = base and u_k drawn deterministically per (job, attempt).
 * Grows on the same order as the exponential ladder but spreads
 * concurrent failures across the window instead of synchronizing
 * them.  Never returns less than base or more than cap, and with
 * jitter disabled in the policy, falls back to backoffDelayMs() so
 * existing cap/attempt semantics (and their tests) are unchanged.
 */
inline double
retryDelayMs(const FleetPolicy &p, const std::string &jobId,
             int failedAttempts)
{
    if (!p.backoffJitter)
        return backoffDelayMs(p, failedAttempts);
    if (failedAttempts < 1 || p.backoffBaseMs <= 0.0)
        return 0.0;
    double prev = p.backoffBaseMs;
    double delay = p.backoffBaseMs;
    for (int k = 1; k <= failedAttempts; ++k) {
        const double u = backoffUnitDraw(jobId, k);
        delay = p.backoffBaseMs + u * (3.0 * prev - p.backoffBaseMs);
        if (delay > p.backoffCapMs)
            delay = p.backoffCapMs;
        if (delay < p.backoffBaseMs)
            delay = p.backoffBaseMs;
        prev = delay;
    }
    return delay;
}

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_BACKOFF_HH
