/**
 * @file
 * Retry/backoff arithmetic for the fleet supervisor, separated so the
 * math is unit-testable without spawning anything.
 */

#ifndef VIP_FLEET_BACKOFF_HH
#define VIP_FLEET_BACKOFF_HH

#include "fleet/job_spec.hh"

namespace vip
{
namespace fleet
{

/**
 * Wall-clock delay before retrying a job that has failed
 * @p failedAttempts times (>= 1): min(cap, base * 2^(failures-1)).
 * Saturates at the cap — the shift is computed in floating point, so
 * absurd failure counts cannot overflow.
 */
inline double
backoffDelayMs(const FleetPolicy &p, int failedAttempts)
{
    if (failedAttempts < 1 || p.backoffBaseMs <= 0.0)
        return 0.0;
    // 2^53 dwarfs any real cap; stop doubling well before overflow.
    double delay = p.backoffBaseMs;
    for (int i = 1; i < failedAttempts && delay < p.backoffCapMs; ++i)
        delay *= 2.0;
    return delay < p.backoffCapMs ? delay : p.backoffCapMs;
}

} // namespace fleet
} // namespace vip

#endif // VIP_FLEET_BACKOFF_HH
