#include "fleet/health.hh"

#include <algorithm>

namespace vip
{
namespace fleet
{

const char *
HostHealth::stateName() const
{
    switch (_state) {
    case HostState::Healthy:
        return "healthy";
    case HostState::Quarantined:
        return "quarantined";
    case HostState::Dead:
        return "dead";
    }
    return "?";
}

bool
HostHealth::onOpFailure(double nowMs, const std::string &detail)
{
    if (_state == HostState::Dead)
        return false;
    ++_totalOpFailures;
    _lastError = detail;
    if (_state == HostState::Quarantined)
        return false; // already benched; probes decide its fate
    if (++_consecutiveFailures < _policy.quarantineAfter)
        return false;
    enterQuarantine(nowMs);
    return true;
}

void
HostHealth::enterQuarantine(double nowMs)
{
    ++_quarantineCount;
    if (_quarantineCount > _policy.maxQuarantines) {
        // Flapping: it has burned every re-admission it gets.
        _state = HostState::Dead;
        return;
    }
    _state = HostState::Quarantined;
    _consecutiveFailures = 0;
    _probeFailures = 0;
    // Repeat offenders wait longer before their first probe.
    _probeIntervalMs = _policy.probeIntervalMs *
                       static_cast<double>(1 << std::min(
                           _quarantineCount - 1, 10));
    _nextProbeMs = nowMs + _probeIntervalMs;
}

void
HostHealth::onProbeSuccess()
{
    if (_state != HostState::Quarantined)
        return;
    _state = HostState::Healthy;
    _consecutiveFailures = 0;
    _probeFailures = 0;
}

bool
HostHealth::onProbeFailure(double nowMs, const std::string &detail)
{
    if (_state != HostState::Quarantined)
        return _state == HostState::Dead;
    _lastError = detail;
    if (++_probeFailures >= _policy.maxProbes) {
        _state = HostState::Dead;
        return true;
    }
    _probeIntervalMs = std::min(_probeIntervalMs * 2.0,
                                _policy.probeIntervalMs * 1024.0);
    _nextProbeMs = nowMs + _probeIntervalMs;
    return false;
}

} // namespace fleet
} // namespace vip
