/**
 * @file
 * A small gem5-flavoured statistics package.
 *
 * Stats register themselves with a Group; a Group dumps every stat with
 * name, description and value(s).  The types provided cover everything
 * the paper's evaluation needs:
 *
 *  - Scalar:        a running counter / value.
 *  - TimeWeighted:  time-weighted average of a piecewise-constant
 *                   signal (e.g. queue occupancy, power state).
 *  - Accumulator:   min/max/mean/stddev over samples.
 *  - Histogram:     fixed-width binned distribution (Fig 3d, Fig 5).
 *  - Rate helpers on top of Scalar (per-second, per-100ms).
 */

#ifndef VIP_STATS_STATS_HH
#define VIP_STATS_STATS_HH

#include <cmath>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace vip
{

class SnapshotWriter;
class SnapshotReader;

namespace stats
{

class Group;

/** Base class: every stat has a name and description. */
class Stat
{
  public:
    Stat(Group &parent, std::string name, std::string desc);
    virtual ~Stat() = default;

    Stat(const Stat &) = delete;
    Stat &operator=(const Stat &) = delete;

    const std::string &name() const { return _name; }
    const std::string &desc() const { return _desc; }

    /** Write "name value # desc" lines to @p os. */
    virtual void print(std::ostream &os) const = 0;

    /** Reset to the just-constructed state. */
    virtual void reset() = 0;

    /** @{ Checkpoint/restore: bit-exact state round-trip. */
    virtual void saveState(SnapshotWriter &w) const = 0;
    virtual void loadState(SnapshotReader &r) = 0;
    /** @} */

  private:
    std::string _name;
    std::string _desc;
};

/** A named collection of stats (usually one per SimObject). */
class Group
{
  public:
    explicit Group(std::string name) : _name(std::move(name)) {}

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    const std::string &name() const { return _name; }

    void add(Stat *s) { _stats.push_back(s); }

    const std::vector<Stat *> &all() const { return _stats; }

    /** Dump every registered stat. */
    void print(std::ostream &os) const;

    /** Reset every registered stat. */
    void resetAll();

    /** @{ Checkpoint/restore of every registered stat, in
     *  registration order, each entry name-checked on load. */
    void saveState(SnapshotWriter &w) const;
    void loadState(SnapshotReader &r);
    /** @} */

  private:
    std::string _name;
    std::vector<Stat *> _stats;
};

/** A simple scalar counter/value. */
class Scalar : public Stat
{
  public:
    using Stat::Stat;

    Scalar &operator+=(double v) { _value += v; return *this; }
    Scalar &operator++() { _value += 1.0; return *this; }
    void set(double v) { _value = v; }

    double value() const { return _value; }

    void print(std::ostream &os) const override;
    void reset() override { _value = 0.0; }

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    double _value = 0.0;
};

/**
 * Time-weighted average of a piecewise-constant signal.  Call set()
 * whenever the signal changes; call close() (idempotent) at the end of
 * simulation to account the final segment.
 */
class TimeWeighted : public Stat
{
  public:
    using Stat::Stat;

    /** Record that the signal has value @p v from @p now onward. */
    void
    set(double v, Tick now)
    {
        accumulate(now);
        _current = v;
    }

    /** Fold the final segment ending at @p now into the average. */
    void close(Tick now) { accumulate(now); }

    double
    average() const
    {
        return _elapsed > 0
            ? _weighted / static_cast<double>(_elapsed) : _current;
    }

    double current() const { return _current; }

    /** Total ticks during which the signal was > @p threshold. */
    double timeAbove() const { return _timeAbove; }

    void print(std::ostream &os) const override;

    void
    reset() override
    {
        _weighted = 0.0;
        _elapsed = 0;
        _last = 0;
        _timeAbove = 0.0;
        // _current intentionally preserved: the signal still has its
        // physical value after a stats reset.
    }

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    void
    accumulate(Tick now)
    {
        vip_assert(now >= _last, "TimeWeighted time went backwards");
        Tick dt = now - _last;
        _weighted += _current * static_cast<double>(dt);
        if (_current > 0.0)
            _timeAbove += static_cast<double>(dt);
        _elapsed += dt;
        _last = now;
    }

    double _current = 0.0;
    double _weighted = 0.0;
    double _timeAbove = 0.0;
    Tick _elapsed = 0;
    Tick _last = 0;
};

/**
 * Sample accumulator: count/min/max/mean/stddev.
 *
 * Variance uses Welford's online update rather than the naive
 * sum-of-squares form: E[x²]−E[x]² cancels catastrophically when the
 * mean dwarfs the spread (constant inputs reported nonzero stddev;
 * large-offset samples lost all variance precision).
 */
class Accumulator : public Stat
{
  public:
    using Stat::Stat;

    void
    sample(double v)
    {
        ++_n;
        _sum += v;
        double delta = v - _meanRun;
        _meanRun += delta / static_cast<double>(_n);
        _m2 += delta * (v - _meanRun);
        if (_n == 1 || v < _min)
            _min = v;
        if (_n == 1 || v > _max)
            _max = v;
    }

    std::uint64_t count() const { return _n; }
    double sum() const { return _sum; }
    double mean() const { return _n ? _meanRun : 0.0; }
    double min() const { return _n ? _min : 0.0; }
    double max() const { return _n ? _max : 0.0; }

    double
    stddev() const
    {
        if (_n < 2)
            return 0.0;
        double var = _m2 / static_cast<double>(_n);
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    void print(std::ostream &os) const override;

    void
    reset() override
    {
        _n = 0;
        _sum = _meanRun = _m2 = _min = _max = 0.0;
    }

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    std::uint64_t _n = 0;
    double _sum = 0.0;
    double _meanRun = 0.0; ///< running mean (Welford)
    double _m2 = 0.0;      ///< sum of squared deviations from mean
    double _min = 0.0;
    double _max = 0.0;
};

/** Fixed-range histogram with uniform bins; samples clamp to range. */
class Histogram : public Stat
{
  public:
    Histogram(Group &parent, std::string name, std::string desc,
              double lo, double hi, std::size_t bins)
        : Stat(parent, std::move(name), std::move(desc)),
          _lo(lo), _hi(hi), _bins(bins, 0)
    {
        vip_assert(hi > lo && bins > 0, "bad histogram shape");
    }

    void
    sample(double v, std::uint64_t weight = 1)
    {
        std::size_t idx;
        if (v <= _lo) {
            idx = 0;
        } else if (v >= _hi) {
            idx = _bins.size() - 1;
        } else {
            idx = static_cast<std::size_t>(
                (v - _lo) / (_hi - _lo) * _bins.size());
            if (idx >= _bins.size())
                idx = _bins.size() - 1;
        }
        _bins[idx] += weight;
        _total += weight;
    }

    std::size_t numBins() const { return _bins.size(); }
    std::uint64_t binCount(std::size_t i) const { return _bins.at(i); }
    std::uint64_t total() const { return _total; }

    /** Fraction of samples in bin @p i. */
    double
    binFraction(std::size_t i) const
    {
        return _total ? static_cast<double>(_bins.at(i)) / _total : 0.0;
    }

    /** Lower edge of bin @p i. */
    double
    binLo(std::size_t i) const
    {
        return _lo + (_hi - _lo) * i / _bins.size();
    }

    /** Upper edge of bin @p i. */
    double binHi(std::size_t i) const { return binLo(i + 1); }

    void print(std::ostream &os) const override;

    void
    reset() override
    {
        std::fill(_bins.begin(), _bins.end(), 0);
        _total = 0;
    }

    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;

  private:
    double _lo, _hi;
    std::vector<std::uint64_t> _bins;
    std::uint64_t _total = 0;
};

/**
 * A derived statistic: evaluates a function of other stats at print
 * time (gem5's Formula, reduced to what this simulator needs).
 */
class Formula : public Stat
{
  public:
    using Fn = std::function<double()>;

    Formula(Group &parent, std::string name, std::string desc, Fn fn)
        : Stat(parent, std::move(name), std::move(desc)),
          _fn(std::move(fn))
    {
        vip_assert(static_cast<bool>(_fn), "formula needs a function");
    }

    double value() const { return _fn(); }

    void print(std::ostream &os) const override;
    void reset() override {}

    /** Formulas hold no state: derived from other stats at read time. */
    void saveState(SnapshotWriter &) const override {}
    void loadState(SnapshotReader &) override {}

  private:
    Fn _fn;
};

} // namespace stats
} // namespace vip

#endif // VIP_STATS_STATS_HH
