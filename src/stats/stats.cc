#include "stats/stats.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>

namespace vip
{
namespace stats
{

Stat::Stat(Group &parent, std::string name, std::string desc)
    : _name(parent.name() + "." + std::move(name)), _desc(std::move(desc))
{
    parent.add(this);
}

void
Group::print(std::ostream &os) const
{
    for (const auto *s : _stats)
        s->print(os);
}

void
Group::resetAll()
{
    for (auto *s : _stats)
        s->reset();
}

namespace
{

void
line(std::ostream &os, const std::string &name, double value,
     const std::string &desc, const char *suffix = "")
{
    os << std::left << std::setw(44) << name << ' '
       << std::setw(16) << std::setprecision(8) << value << suffix
       << "  # " << desc << '\n';
}

} // namespace

void
Scalar::print(std::ostream &os) const
{
    line(os, name(), _value, desc());
}

void
TimeWeighted::print(std::ostream &os) const
{
    line(os, name() + ".avg", average(), desc());
}

void
Accumulator::print(std::ostream &os) const
{
    line(os, name() + ".count", static_cast<double>(_n), desc());
    line(os, name() + ".mean", mean(), desc());
    line(os, name() + ".min", min(), desc());
    line(os, name() + ".max", max(), desc());
    line(os, name() + ".stddev", stddev(), desc());
}

void
Formula::print(std::ostream &os) const
{
    line(os, name(), value(), desc());
}

void
Histogram::print(std::ostream &os) const
{
    for (std::size_t i = 0; i < _bins.size(); ++i) {
        if (!_bins[i])
            continue;
        std::ostringstream nm;
        nm << name() << "[" << binLo(i) << "," << binHi(i) << ")";
        line(os, nm.str(), static_cast<double>(_bins[i]), desc());
    }
}

} // namespace stats
} // namespace vip
