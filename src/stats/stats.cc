#include "stats/stats.hh"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "sim/snapshot.hh"

namespace vip
{
namespace stats
{

Stat::Stat(Group &parent, std::string name, std::string desc)
    : _name(parent.name() + "." + std::move(name)), _desc(std::move(desc))
{
    parent.add(this);
}

void
Group::print(std::ostream &os) const
{
    for (const auto *s : _stats)
        s->print(os);
}

void
Group::resetAll()
{
    for (auto *s : _stats)
        s->reset();
}

void
Group::saveState(SnapshotWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(_stats.size()));
    for (const auto *s : _stats) {
        w.str(s->name());
        s->saveState(w);
    }
}

void
Group::loadState(SnapshotReader &r)
{
    std::uint32_t n = r.u32();
    if (n != _stats.size()) {
        fatal("stats group '", _name, "': snapshot has ", n,
              " stats, this build registers ", _stats.size(),
              " (version skew)");
    }
    for (auto *s : _stats) {
        std::string name = r.str();
        if (name != s->name()) {
            fatal("stats group '", _name, "': snapshot stat '", name,
                  "' does not match registered '", s->name(),
                  "' (version skew)");
        }
        s->loadState(r);
    }
}

void
Scalar::saveState(SnapshotWriter &w) const
{
    w.d(_value);
}

void
Scalar::loadState(SnapshotReader &r)
{
    _value = r.d();
}

void
TimeWeighted::saveState(SnapshotWriter &w) const
{
    w.d(_current);
    w.d(_weighted);
    w.d(_timeAbove);
    w.tick(_elapsed);
    w.tick(_last);
}

void
TimeWeighted::loadState(SnapshotReader &r)
{
    _current = r.d();
    _weighted = r.d();
    _timeAbove = r.d();
    _elapsed = r.tick();
    _last = r.tick();
}

void
Accumulator::saveState(SnapshotWriter &w) const
{
    w.u64(_n);
    w.d(_sum);
    w.d(_meanRun);
    w.d(_m2);
    w.d(_min);
    w.d(_max);
}

void
Accumulator::loadState(SnapshotReader &r)
{
    _n = r.u64();
    _sum = r.d();
    _meanRun = r.d();
    _m2 = r.d();
    _min = r.d();
    _max = r.d();
}

void
Histogram::saveState(SnapshotWriter &w) const
{
    w.u32(static_cast<std::uint32_t>(_bins.size()));
    for (std::uint64_t b : _bins)
        w.u64(b);
    w.u64(_total);
}

void
Histogram::loadState(SnapshotReader &r)
{
    std::uint32_t n = r.u32();
    if (n != _bins.size()) {
        fatal("histogram '", name(), "': snapshot has ", n,
              " bins, this build has ", _bins.size(),
              " (version skew)");
    }
    for (auto &b : _bins)
        b = r.u64();
    _total = r.u64();
}

namespace
{

void
line(std::ostream &os, const std::string &name, double value,
     const std::string &desc, const char *suffix = "")
{
    os << std::left << std::setw(44) << name << ' '
       << std::setw(16) << std::setprecision(8) << value << suffix
       << "  # " << desc << '\n';
}

} // namespace

void
Scalar::print(std::ostream &os) const
{
    line(os, name(), _value, desc());
}

void
TimeWeighted::print(std::ostream &os) const
{
    line(os, name() + ".avg", average(), desc());
}

void
Accumulator::print(std::ostream &os) const
{
    line(os, name() + ".count", static_cast<double>(_n), desc());
    line(os, name() + ".mean", mean(), desc());
    line(os, name() + ".min", min(), desc());
    line(os, name() + ".max", max(), desc());
    line(os, name() + ".stddev", stddev(), desc());
}

void
Formula::print(std::ostream &os) const
{
    line(os, name(), value(), desc());
}

void
Histogram::print(std::ostream &os) const
{
    for (std::size_t i = 0; i < _bins.size(); ++i) {
        if (!_bins[i])
            continue;
        std::ostringstream nm;
        nm << name() << "[" << binLo(i) << "," << binHi(i) << ")";
        line(os, nm.str(), static_cast<double>(_bins[i]), desc());
    }
}

} // namespace stats
} // namespace vip
