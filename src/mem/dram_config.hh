/**
 * @file
 * LPDDR3 device/controller configuration (Table 3 of the paper).
 */

#ifndef VIP_MEM_DRAM_CONFIG_HH
#define VIP_MEM_DRAM_CONFIG_HH

#include <cstdint>

#include "power/power_params.hh"
#include "sim/types.hh"

namespace vip
{

/** LPDDR3 parameters; defaults follow Table 3. */
struct DramConfig
{
    /** Number of independent channels. */
    std::uint32_t channels = 4;
    /** Ranks per channel (Table 3: 1). */
    std::uint32_t ranksPerChannel = 1;
    /** Banks per rank (Table 3: 8). */
    std::uint32_t banksPerRank = 8;
    /** Row (page) size per bank, bytes. */
    std::uint32_t rowBytes = 4096;

    /** @{ Core timing (Table 3: tCL = tRP = tRCD = 12 ns). */
    Tick tCL = fromNs(12);
    Tick tRP = fromNs(12);
    Tick tRCD = fromNs(12);
    /** @} */

    /**
     * Peak data rate per channel, bytes per nanosecond.  4 x 4.0 B/ns
     * gives the ~16 GB/s aggregate peak visible in Fig 3c.
     */
    double channelBytesPerNs = 4.0;

    /** Per-channel transaction queue capacity. */
    std::uint32_t queueDepth = 32;

    /**
     * Interleave granularity (bytes): consecutive 1 KB blocks map to
     * consecutive channels, matching the sub-frame size.
     */
    std::uint32_t interleaveBytes = 1024;

    /**
     * Ideal-memory mode (Fig 3 "Ideal"): every request completes in
     * idealLatency with no bandwidth or bank constraints.
     */
    bool ideal = false;
    Tick idealLatency = fromNs(10);

    /** Bandwidth-monitor sampling window. */
    Tick bwWindow = fromUs(100);

    /** @{ Low-power states (LPDDR3 power-down / self-refresh).
     * When every channel has been idle for powerDownDelay the device
     * enters fast power-down; after selfRefreshDelay of further
     * idleness it drops into self-refresh.  Exiting costs tXP / tXS
     * added to the first access.  IP-to-IP communication is what
     * creates idle windows long enough for these states to matter. */
    bool enableLowPower = true;
    Tick powerDownDelay = fromUs(3);
    Tick selfRefreshDelay = fromUs(150);
    Tick tXP = fromNs(20);    ///< power-down exit
    Tick tXS = fromNs(1000);  ///< self-refresh exit
    /** @} */

    DramPowerParams power{};

    /** Aggregate peak bandwidth in bytes/ns. */
    double
    peakBytesPerNs() const
    {
        return channelBytesPerNs * channels;
    }

    /** Aggregate peak bandwidth in GB/s. */
    double peakGBps() const { return peakBytesPerNs(); }
};

} // namespace vip

#endif // VIP_MEM_DRAM_CONFIG_HH
