/**
 * @file
 * Memory request types shared by the controller, System Agent and DMA
 * engines.
 */

#ifndef VIP_MEM_MEM_TYPES_HH
#define VIP_MEM_MEM_TYPES_HH

#include <cstdint>
#include <functional>

#include "sim/types.hh"

namespace vip
{

/** Physical address type. */
using Addr = std::uint64_t;

/** A DMA-style memory transaction (one sub-frame worth of data). */
struct MemRequest
{
    Addr addr = 0;
    std::uint32_t bytes = 0;
    bool write = false;
    /** Requester id, used for per-agent accounting. */
    std::uint32_t requesterId = 0;
    /** Invoked when the transaction completes (may be empty). */
    std::function<void()> onComplete;
};

/**
 * Simple bump allocator for frame buffers in the simulated physical
 * address space.  Allocations are page aligned and wrap around when
 * the modelled capacity is exhausted (frame buffers are transient, so
 * reuse is fine for timing purposes).
 */
class FrameAllocator
{
  public:
    explicit FrameAllocator(Addr capacity = Addr(1) << 32)
        : _capacity(capacity)
    {}

    Addr
    allocate(std::uint64_t bytes)
    {
        constexpr Addr align = 4096;
        bytes = (bytes + align - 1) & ~(align - 1);
        if (_next + bytes > _capacity)
            _next = 0;
        Addr out = _next;
        _next += bytes;
        return out;
    }

    /** @{ bump-cursor access (checkpointing) */
    Addr cursor() const { return _next; }
    void setCursor(Addr next) { _next = next; }
    /** @} */

  private:
    Addr _capacity;
    Addr _next = 0;
};

} // namespace vip

#endif // VIP_MEM_MEM_TYPES_HH
