/**
 * @file
 * Transaction-level LPDDR3 memory controller.
 *
 * Requests (sub-frame sized, ~1 KB) are interleaved across channels by
 * address.  Each channel services its queue with an FR-FCFS policy
 * over a per-bank open-row state machine: a row hit pays CAS plus the
 * data burst; a miss additionally pays precharge + activate.
 *
 * The controller also hosts the bandwidth monitor that produces the
 * Fig 3c/3d data (average bandwidth and time-at-bandwidth histogram).
 */

#ifndef VIP_MEM_MEMORY_CONTROLLER_HH
#define VIP_MEM_MEMORY_CONTROLLER_HH

#include <deque>
#include <unordered_map>
#include <vector>

#include "fault/fault_injector.hh"
#include "mem/dram_config.hh"
#include "mem/mem_types.hh"
#include "power/energy_account.hh"
#include "sim/sim_object.hh"
#include "stats/stats.hh"

namespace vip
{

/** The platform memory controller (all channels). */
class MemoryController : public SimObject
{
  public:
    MemoryController(System &system, std::string name,
                     const DramConfig &cfg, EnergyLedger &ledger,
                     FaultInjector *faults = nullptr);

    /**
     * Issue a transaction.  Completion is signalled through
     * req.onComplete.  The queue is unbounded; requesters implement
     * back-pressure with their own outstanding-request credits, but
     * queueFull() lets them honour the modelled queue depth.
     */
    void access(MemRequest req);

    /** True when the channel serving @p addr has a full queue. */
    bool queueFull(Addr addr) const;

    /** Number of queued + in-flight transactions on all channels. */
    std::size_t inFlight() const;

    const DramConfig &config() const { return _cfg; }

    /** @{ Aggregate traffic statistics. */
    std::uint64_t bytesRead() const { return _bytesRead; }
    std::uint64_t bytesWritten() const { return _bytesWritten; }
    std::uint64_t rowHits() const { return _rowHits; }
    std::uint64_t rowMisses() const { return _rowMisses; }
    /** ECC events observed on serviced bursts (0 without faults). */
    std::uint64_t eccCorrected() const { return _eccCorrected; }
    std::uint64_t eccUncorrected() const { return _eccUncorrected; }
    /** Bytes moved on behalf of @p requester (req.requesterId). */
    std::uint64_t bytesForRequester(std::uint32_t requester) const;
    /** @{ Burst ledger: accepted == completed + inFlight(). */
    std::uint64_t burstsAccepted() const { return _burstsAccepted; }
    std::uint64_t burstsCompleted() const { return _burstsCompleted; }
    /** @} */
    /** @} */

    /** Average observed bandwidth over the whole run, GB/s. */
    double averageBandwidthGBps() const;

    /**
     * Fraction of monitor windows whose bandwidth exceeded
     * @p fraction of peak (Fig 3d's "time near peak").
     */
    double fractionOfTimeAbove(double fraction) const;

    /** The raw time-at-bandwidth histogram (% of peak, 10 bins). */
    const stats::Histogram &bwHistogram() const { return _bwHist; }

    /** Mean service latency (queue + device) in ns. */
    double avgLatencyNs() const { return _latency.mean(); }

    /** LPDDR low-power state (power-down / self-refresh). */
    enum class LpState
    {
        Active,
        PowerDown,
        SelfRefresh,
    };

    LpState lpState() const { return _lpState; }
    Tick powerDownTicks() const { return _powerDownTicks; }
    Tick selfRefreshTicks() const { return _selfRefreshTicks; }
    std::uint64_t lpEntries() const { return _lpEntries; }

    stats::Group &statsGroup() { return _stats; }

    void startup() override;
    void finalize() override;
    void registerStats(StatRegistry &registry) override;

    /** @{ Auditable */
    void auditInvariants(AuditContext &ctx) const override;
    void stateDigest(StateDigest &d) const override;
    /** @} */

    /**
     * True when no burst is queued, in service, or (ideal mode) in
     * flight as a pending completion — the only pending events are the
     * re-armable bandwidth sampler and low-power timer.
     */
    bool
    quiescent() const
    {
        return inFlight() == 0 && _idealInFlight == 0;
    }

    /** @{ Serializable */
    void saveState(SnapshotWriter &w) const override;
    void loadState(SnapshotReader &r) override;
    /** @} */

  private:
    struct Pending
    {
        MemRequest req;
        Tick enqueued;
    };

    struct Bank
    {
        bool open = false;
        std::uint64_t row = 0;
    };

    struct Channel
    {
        std::deque<Pending> queue;
        std::vector<Bank> banks;
        bool busy = false;

        /** @{ per-channel accounting (stats registry, dram.ch<i>.*) */
        std::uint64_t rowHits = 0;
        std::uint64_t rowMisses = 0;
        std::uint64_t bursts = 0; ///< completed
        std::uint64_t bytes = 0;  ///< serviced payload bytes
        /** @} */
    };

    std::uint32_t channelOf(Addr addr) const;
    std::uint32_t bankOf(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;

    /** Start servicing the next request on @p ch if idle. */
    void trySchedule(std::uint32_t ch);

    /** Channels with a burst in service right now. */
    std::size_t busyChannelCount() const;

    /** FR-FCFS: index of the first row-hit request, else 0. */
    std::size_t pickNext(const Channel &c, std::uint32_t ch) const;

    void sampleBandwidth();

    /** @{ low-power state machine */
    void enterLpState(LpState s);
    void armLpTimer();
    /** Body of the low-power demotion timer (named for restore). */
    void lpTimerFired();
    /** Wake for an access; returns the exit penalty to charge. */
    Tick wakeForAccess();
    void onAllIdle();
    /** @} */

    DramConfig _cfg;
    std::vector<Channel> _channels;
    EnergyAccount &_energy;
    FaultInjector *_faults;

    // Bandwidth monitor state
    std::uint64_t _windowBytes = 0;
    Tick _windowStart = 0;
    EventId _bwEvent = InvalidEventId;

    /** Ideal-mode completions scheduled but not yet delivered. */
    std::uint64_t _idealInFlight = 0;

    // Aggregate counters
    std::uint64_t _bytesRead = 0;
    std::uint64_t _bytesWritten = 0;
    std::uint64_t _rowHits = 0;
    std::uint64_t _rowMisses = 0;
    std::uint64_t _eccCorrected = 0;
    std::uint64_t _eccUncorrected = 0;
    /** Channel-queue bursts (non-ideal mode only). */
    std::uint64_t _burstsAccepted = 0;
    std::uint64_t _burstsCompleted = 0;

    /** Per-requester traffic attribution. */
    std::unordered_map<std::uint32_t, std::uint64_t> _byRequester;

    // Low-power state machine
    LpState _lpState = LpState::Active;
    Tick _lpSince = 0;
    Tick _powerDownTicks = 0;
    Tick _selfRefreshTicks = 0;
    std::uint64_t _lpEntries = 0;
    EventId _lpTimer = InvalidEventId;
    /** Exit penalty pending application to the next scheduled burst. */
    Tick _wakePenalty = 0;

    // ---- observability (tracer string ids; never digested) ----
    std::vector<std::uint32_t> _obsTrkCh; ///< per-channel burst tracks
    std::uint32_t _obsTrkMem = 0;         ///< controller-level track
    std::uint32_t _obsNmBurst = 0;
    std::uint32_t _obsNmBw = 0;

    stats::Group _stats;
    stats::Scalar _statReads;
    stats::Scalar _statWrites;
    stats::Scalar _statEccCorrected;
    stats::Scalar _statEccUncorrected;
    stats::Accumulator _latency;
    stats::Histogram _bwHist;
    stats::TimeWeighted _busyChannels;
};

} // namespace vip

#endif // VIP_MEM_MEMORY_CONTROLLER_HH
