#include "mem/memory_controller.hh"

#include "obs/latency.hh"
#include "obs/stat_registry.hh"
#include "obs/tracer.hh"
#include "sim/system.hh"

#include <algorithm>
#include <memory>

namespace vip
{

MemoryController::MemoryController(System &system, std::string name,
                                   const DramConfig &cfg,
                                   EnergyLedger &ledger,
                                   FaultInjector *faults)
    : SimObject(system, std::move(name)),
      _cfg(cfg),
      _channels(cfg.channels),
      _energy(ledger.account("dram", this->name())),
      _faults(faults),
      _stats(this->name()),
      _statReads(_stats, "reads", "number of read transactions"),
      _statWrites(_stats, "writes", "number of write transactions"),
      _statEccCorrected(_stats, "eccCorrected",
                        "bursts with a corrected ECC error"),
      _statEccUncorrected(_stats, "eccUncorrected",
                          "bursts replayed for uncorrectable ECC"),
      _latency(_stats, "latencyNs", "service latency (ns)"),
      _bwHist(_stats, "bwPctPeak",
              "time-at-bandwidth histogram (% of peak)", 0.0, 100.0, 10),
      _busyChannels(_stats, "busyChannels", "busy channels over time")
{
    vip_assert(cfg.channels > 0 && (cfg.channels & (cfg.channels - 1)) == 0,
               "channel count must be a power of two");
    for (auto &c : _channels)
        c.banks.resize(cfg.banksPerRank * cfg.ranksPerChannel);
    // Background power is always on while the platform runs.
    _energy.setPower(
        cfg.power.backgroundWattsPerChannel * cfg.channels, 0);
}

std::uint32_t
MemoryController::channelOf(Addr addr) const
{
    return (addr / _cfg.interleaveBytes) & (_cfg.channels - 1);
}

std::uint32_t
MemoryController::bankOf(Addr addr) const
{
    std::uint64_t block = addr / (_cfg.interleaveBytes * _cfg.channels);
    return block % _channels[0].banks.size();
}

std::uint64_t
MemoryController::rowOf(Addr addr) const
{
    return addr / (static_cast<std::uint64_t>(_cfg.rowBytes) *
                   _cfg.channels * _channels[0].banks.size());
}

void
MemoryController::startup()
{
    _windowStart = curTick();
    _bwEvent = scheduleIn(_cfg.bwWindow, [this] { sampleBandwidth(); },
                          EventPriority::Stats, "dram.bw");
    armLpTimer();
}

// --------------------------------------------------------------------
// LPDDR low-power state machine
// --------------------------------------------------------------------

void
MemoryController::enterLpState(LpState s)
{
    if (s == _lpState)
        return;
    Tick now = curTick();
    if (_lpState == LpState::PowerDown)
        _powerDownTicks += now - _lpSince;
    else if (_lpState == LpState::SelfRefresh)
        _selfRefreshTicks += now - _lpSince;
    _lpState = s;
    _lpSince = now;

    double base = _cfg.power.backgroundWattsPerChannel * _cfg.channels;
    double watts = base;
    if (s == LpState::PowerDown)
        watts = base * _cfg.power.powerDownFraction;
    else if (s == LpState::SelfRefresh)
        watts = base * _cfg.power.selfRefreshFraction;
    _energy.setPower(watts, now);
    if (Tracer *tr = system().tracer();
        tr && tr->enabled(TraceCat::Power)) {
        if (!_obsTrkMem)
            _obsTrkMem = tr->intern(name());
        const char *nm = s == LpState::Active ? "lp:active"
            : (s == LpState::PowerDown ? "lp:power-down"
                                       : "lp:self-refresh");
        tr->instant(TraceCat::Power, _obsTrkMem, tr->intern(nm), now);
    }
    if (s != LpState::Active)
        ++_lpEntries;
    if (s == LpState::SelfRefresh) {
        // Self-refresh loses the open-row state.
        for (auto &c : _channels) {
            for (auto &b : c.banks)
                b.open = false;
        }
    }
}

void
MemoryController::armLpTimer()
{
    if (!_cfg.enableLowPower || _cfg.ideal)
        return;
    if (_lpTimer != InvalidEventId) {
        deschedule(_lpTimer);
        _lpTimer = InvalidEventId;
    }
    if (inFlight() > 0)
        return;
    Tick delay = _lpState == LpState::Active
        ? _cfg.powerDownDelay
        : (_lpState == LpState::PowerDown ? _cfg.selfRefreshDelay
                                          : MaxTick);
    if (delay == MaxTick)
        return; // already in the deepest state
    _lpTimer = scheduleIn(delay, [this] { lpTimerFired(); },
                          EventPriority::Default, "dram.lp");
}

void
MemoryController::lpTimerFired()
{
    _lpTimer = InvalidEventId;
    if (inFlight() > 0)
        return;
    enterLpState(_lpState == LpState::Active ? LpState::PowerDown
                                             : LpState::SelfRefresh);
    armLpTimer();
}

Tick
MemoryController::wakeForAccess()
{
    if (_lpTimer != InvalidEventId) {
        deschedule(_lpTimer);
        _lpTimer = InvalidEventId;
    }
    Tick penalty = 0;
    if (_lpState == LpState::PowerDown)
        penalty = _cfg.tXP;
    else if (_lpState == LpState::SelfRefresh)
        penalty = _cfg.tXS;
    enterLpState(LpState::Active);
    return penalty;
}

void
MemoryController::onAllIdle()
{
    armLpTimer();
}

void
MemoryController::sampleBandwidth()
{
    Tick now = curTick();
    Tick dt = now - _windowStart;
    if (dt > 0) {
        double gbps = static_cast<double>(_windowBytes) /
                      static_cast<double>(dt) * 1000.0;
        double pct = 100.0 * gbps / _cfg.peakGBps();
        _bwHist.sample(std::min(pct, 99.99));
        if (Tracer *tr = system().tracer();
            tr && tr->enabled(TraceCat::Dram)) {
            if (!_obsTrkMem)
                _obsTrkMem = tr->intern(name());
            if (!_obsNmBw)
                _obsNmBw = tr->intern("bw_gbps");
            tr->counter(TraceCat::Dram, _obsTrkMem, _obsNmBw, now,
                        gbps);
        }
    }
    _windowBytes = 0;
    _windowStart = now;
    _bwEvent = scheduleIn(_cfg.bwWindow, [this] { sampleBandwidth(); },
                          EventPriority::Stats, "dram.bw");
}

void
MemoryController::access(MemRequest req)
{
    vip_assert(req.bytes > 0, "zero-byte memory request");
    if (req.write) {
        ++_statWrites;
        _bytesWritten += req.bytes;
    } else {
        ++_statReads;
        _bytesRead += req.bytes;
    }
    _windowBytes += req.bytes;
    _byRequester[req.requesterId] += req.bytes;
    _energy.addDynamicNj(_cfg.power.energyPerByteNj * req.bytes);
    if (!_cfg.ideal)
        _wakePenalty = std::max(_wakePenalty, wakeForAccess());

    if (_cfg.ideal) {
        auto cb = std::move(req.onComplete);
        Tick lat = _cfg.idealLatency;
        _latency.sample(toNs(lat));
        ++_idealInFlight;
        scheduleIn(lat, [this, cb = std::move(cb)] {
            --_idealInFlight;
            if (cb)
                cb();
        }, EventPriority::Default, "dram.burst");
        return;
    }

    // Transactions larger than the interleave granularity stripe
    // across consecutive channels (this is what the interleaving is
    // for); the original completion fires when every stripe is done.
    if (req.bytes > _cfg.interleaveBytes) {
        std::uint32_t stripes =
            (req.bytes + _cfg.interleaveBytes - 1) /
            _cfg.interleaveBytes;
        auto left = std::make_shared<std::uint32_t>(stripes);
        auto cb = std::make_shared<std::function<void()>>(
            std::move(req.onComplete));
        std::uint32_t remaining = req.bytes;
        for (std::uint32_t s = 0; s < stripes; ++s) {
            Pending p;
            p.req.addr = req.addr + static_cast<Addr>(s) *
                         _cfg.interleaveBytes;
            p.req.bytes =
                std::min(remaining, _cfg.interleaveBytes);
            remaining -= p.req.bytes;
            p.req.write = req.write;
            p.req.requesterId = req.requesterId;
            p.req.onComplete = [left, cb] {
                if (--*left == 0 && *cb)
                    (*cb)();
            };
            p.enqueued = curTick();
            std::uint32_t ch = channelOf(p.req.addr);
            ++_burstsAccepted;
            _channels[ch].queue.push_back(std::move(p));
            trySchedule(ch);
        }
        return;
    }

    std::uint32_t ch = channelOf(req.addr);
    ++_burstsAccepted;
    _channels[ch].queue.push_back(Pending{std::move(req), curTick()});
    trySchedule(ch);
}

bool
MemoryController::queueFull(Addr addr) const
{
    if (_cfg.ideal)
        return false;
    const auto &c = _channels[channelOf(addr)];
    return c.queue.size() >= _cfg.queueDepth;
}

std::size_t
MemoryController::inFlight() const
{
    std::size_t n = 0;
    for (const auto &c : _channels)
        n += c.queue.size() + (c.busy ? 1 : 0);
    return n;
}

std::size_t
MemoryController::pickNext(const Channel &c, std::uint32_t ch) const
{
    (void)ch;
    // FR-FCFS: oldest row-hit first, else the oldest request.
    for (std::size_t i = 0; i < c.queue.size(); ++i) {
        const auto &p = c.queue[i];
        const Bank &b = c.banks[bankOf(p.req.addr)];
        if (b.open && b.row == rowOf(p.req.addr))
            return i;
    }
    return 0;
}

void
MemoryController::trySchedule(std::uint32_t ch)
{
    Channel &c = _channels[ch];
    if (c.busy || c.queue.empty())
        return;

    std::size_t idx = pickNext(c, ch);
    Pending p = std::move(c.queue[idx]);
    c.queue.erase(c.queue.begin() + idx);

    Bank &bank = c.banks[bankOf(p.req.addr)];
    std::uint64_t row = rowOf(p.req.addr);

    Tick access = _cfg.tCL;
    if (!bank.open) {
        access += _cfg.tRCD;
        ++_rowMisses;
        ++c.rowMisses;
        _energy.addDynamicNj(_cfg.power.activateNj);
    } else if (bank.row != row) {
        access += _cfg.tRP + _cfg.tRCD;
        ++_rowMisses;
        ++c.rowMisses;
        _energy.addDynamicNj(_cfg.power.activateNj);
    } else {
        ++_rowHits;
        ++c.rowHits;
    }
    c.bytes += p.req.bytes;
    bank.open = true;
    bank.row = row;

    Tick burst = fromNs(static_cast<double>(p.req.bytes) /
                        _cfg.channelBytesPerNs);
    Tick service = access + burst + _wakePenalty;
    _wakePenalty = 0; // exit latency charged once

    if (_faults) {
        switch (_faults->injectEccEvent()) {
          case FaultInjector::EccOutcome::Corrected:
            // Single-bit flip: the controller corrects in-line for a
            // fixed latency adder.
            ++_eccCorrected;
            ++_statEccCorrected;
            service += _faults->plan().eccCorrectionLatency;
            break;
          case FaultInjector::EccOutcome::Uncorrected:
            // Detected-uncorrectable: scrub and replay the access
            // (row state is unchanged, so the replay is a row hit).
            ++_eccUncorrected;
            ++_statEccUncorrected;
            service += _cfg.tCL + burst;
            break;
          case FaultInjector::EccOutcome::None:
            break;
        }
    }

    c.busy = true;
    double busyCount = 0;
    for (const auto &cc : _channels)
        busyCount += cc.busy ? 1.0 : 0.0;
    _busyChannels.set(busyCount, curTick());

    if (Tracer *tr = system().tracer();
        tr && tr->enabled(TraceCat::Dram)) {
        if (_obsTrkCh.empty()) {
            _obsTrkCh.resize(_channels.size());
            for (std::size_t i = 0; i < _channels.size(); ++i) {
                _obsTrkCh[i] =
                    tr->intern(name() + ".ch" + std::to_string(i));
            }
            _obsNmBurst = tr->intern("burst");
        }
        // The requester id rides in the lane slot (no lanes in DRAM).
        tr->complete(TraceCat::Dram, _obsTrkCh[ch], _obsNmBurst,
                     curTick(), curTick() + service, -1, -1,
                     static_cast<std::int32_t>(p.req.requesterId),
                     static_cast<double>(p.req.bytes));
    }
    if (LatencyCollector *lc = system().latency())
        lc->recordDramBurst(service);

    Tick enqueue = p.enqueued;
    auto cb = std::move(p.req.onComplete);
    scheduleIn(service, [this, ch, enqueue, cb = std::move(cb)] {
        Channel &cc = _channels[ch];
        cc.busy = false;
        ++_burstsCompleted;
        ++cc.bursts;
        double busy = 0;
        for (const auto &c2 : _channels)
            busy += c2.busy ? 1.0 : 0.0;
        _busyChannels.set(busy, curTick());
        _latency.sample(toNs(curTick() - enqueue));
        if (cb)
            cb();
        trySchedule(ch);
        if (inFlight() == 0)
            onAllIdle();
    }, EventPriority::Default, "dram.burst");
}

std::uint64_t
MemoryController::bytesForRequester(std::uint32_t requester) const
{
    auto it = _byRequester.find(requester);
    return it == _byRequester.end() ? 0 : it->second;
}

double
MemoryController::averageBandwidthGBps() const
{
    Tick now = curTick();
    if (now == 0)
        return 0.0;
    return static_cast<double>(_bytesRead + _bytesWritten) /
           static_cast<double>(now) * 1000.0;
}

double
MemoryController::fractionOfTimeAbove(double fraction) const
{
    if (_bwHist.total() == 0)
        return 0.0;
    double pct = fraction * 100.0;
    std::uint64_t above = 0;
    for (std::size_t i = 0; i < _bwHist.numBins(); ++i) {
        if (_bwHist.binLo(i) >= pct)
            above += _bwHist.binCount(i);
    }
    return static_cast<double>(above) /
           static_cast<double>(_bwHist.total());
}

void
MemoryController::finalize()
{
    Tick now = curTick();
    if (_lpState == LpState::PowerDown)
        _powerDownTicks += now - _lpSince;
    else if (_lpState == LpState::SelfRefresh)
        _selfRefreshTicks += now - _lpSince;
    _lpSince = now;
    _busyChannels.close(now);
    _energy.close(now);
}

void
MemoryController::registerStats(StatRegistry &r)
{
    r.addExact("dram.bytes_read", "bytes read from DRAM", "bytes",
               [this] { return double(_bytesRead); });
    r.addExact("dram.bytes_written", "bytes written to DRAM", "bytes",
               [this] { return double(_bytesWritten); });
    r.addExact("dram.row_hits", "row-buffer hits", "bursts",
               [this] { return double(_rowHits); });
    r.addExact("dram.row_misses", "row-buffer misses", "bursts",
               [this] { return double(_rowMisses); });
    r.addExact("dram.ecc_corrected", "bursts with a corrected ECC "
               "error", "bursts",
               [this] { return double(_eccCorrected); });
    r.addExact("dram.ecc_uncorrected", "bursts replayed for "
               "uncorrectable ECC", "bursts",
               [this] { return double(_eccUncorrected); });
    r.addExact("dram.bursts_accepted", "bursts accepted into channel "
               "queues", "bursts",
               [this] { return double(_burstsAccepted); });
    r.addExact("dram.bursts_completed", "bursts serviced to "
               "completion", "bursts",
               [this] { return double(_burstsCompleted); });
    r.addExact("dram.lp_entries", "low-power state entries", "",
               [this] { return double(_lpEntries); });
    r.addTiming("dram.avg_bw_gbps", "average observed bandwidth",
                "GB/s", [this] { return averageBandwidthGBps(); });
    r.addTiming("dram.powerdown_ms", "time in power-down", "ms",
                [this] { return toMs(_powerDownTicks); });
    r.addTiming("dram.selfrefresh_ms", "time in self-refresh", "ms",
                [this] { return toMs(_selfRefreshTicks); });
    r.addAccumulator("dram.latency_ns", "ns", _latency);
    r.addTimeWeighted("dram.busy_channels", "channels",
                      _busyChannels);
    for (std::size_t i = 0; i < _channels.size(); ++i) {
        const Channel *c = &_channels[i];
        std::string p = "dram.ch" + std::to_string(i);
        r.addExact(p + ".row_hits", "row-buffer hits", "bursts",
                   [c] { return double(c->rowHits); });
        r.addExact(p + ".row_misses", "row-buffer misses", "bursts",
                   [c] { return double(c->rowMisses); });
        r.addExact(p + ".bursts", "bursts serviced", "bursts",
                   [c] { return double(c->bursts); });
        r.addExact(p + ".bytes", "payload bytes serviced", "bytes",
                   [c] { return double(c->bytes); });
    }
}

void
MemoryController::auditInvariants(AuditContext &ctx) const
{
    // Burst conservation through the channel queues (the ideal-memory
    // path bypasses the channels and both counters).
    ctx.checkEq("mem.burst_conservation", _burstsAccepted,
                _burstsCompleted + inFlight(),
                "accepted != completed + queued/busy");
    // Every byte counted at the front door is attributed to exactly
    // one requester.
    std::uint64_t attributed = 0;
    for (const auto &[id, bytes] : _byRequester)
        attributed += bytes;
    ctx.checkEq("mem.byte_attribution", _bytesRead + _bytesWritten,
                attributed, "requester attribution leaks bytes");
    ctx.checkEq("mem.row_accounting", _rowHits + _rowMisses,
                _burstsCompleted + (busyChannelCount()),
                "row decisions != bursts issued");
}

std::size_t
MemoryController::busyChannelCount() const
{
    std::size_t n = 0;
    for (const auto &c : _channels)
        n += c.busy ? 1 : 0;
    return n;
}

void
MemoryController::stateDigest(StateDigest &d) const
{
    d.add(name());
    d.add(_bytesRead);
    d.add(_bytesWritten);
    d.add(_rowHits);
    d.add(_rowMisses);
    d.add(_eccCorrected);
    d.add(_eccUncorrected);
    d.add(_burstsAccepted);
    d.add(_burstsCompleted);
    d.add(static_cast<std::uint64_t>(_lpState));
    d.add(_lpEntries);
    d.add(static_cast<std::uint64_t>(_powerDownTicks));
    d.add(static_cast<std::uint64_t>(_selfRefreshTicks));
    for (const auto &c : _channels) {
        d.add(c.busy);
        d.add(static_cast<std::uint64_t>(c.queue.size()));
    }
    // Unordered per-requester map: digest in sorted-key order so the
    // result is independent of hash iteration order.
    std::vector<std::uint32_t> ids;
    ids.reserve(_byRequester.size());
    for (const auto &[id, bytes] : _byRequester)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    for (std::uint32_t id : ids) {
        d.add(id);
        d.add(_byRequester.at(id));
    }
}

void
MemoryController::saveState(SnapshotWriter &w) const
{
    vip_assert(quiescent(),
               "checkpointing a memory controller with bursts in "
               "flight");
    EventQueue &eq = system().eventq();

    w.u64(_windowBytes);
    w.tick(_windowStart);
    w.u64(_bytesRead);
    w.u64(_bytesWritten);
    w.u64(_rowHits);
    w.u64(_rowMisses);
    w.u64(_eccCorrected);
    w.u64(_eccUncorrected);
    w.u64(_burstsAccepted);
    w.u64(_burstsCompleted);
    w.tick(_wakePenalty);

    // Per-requester attribution, in sorted-key order so the snapshot
    // bytes are independent of hash iteration order.
    std::vector<std::uint32_t> ids;
    ids.reserve(_byRequester.size());
    for (const auto &[id, bytes] : _byRequester)
        ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    w.u32(static_cast<std::uint32_t>(ids.size()));
    for (std::uint32_t id : ids) {
        w.u32(id);
        w.u64(_byRequester.at(id));
    }

    // Per-channel open-row state and accounting.  Queues are empty
    // and no channel is busy at a quiescent point.
    w.u32(static_cast<std::uint32_t>(_channels.size()));
    for (const auto &c : _channels) {
        vip_assert(c.queue.empty() && !c.busy,
                   "channel not idle at checkpoint");
        w.u32(static_cast<std::uint32_t>(c.banks.size()));
        for (const auto &b : c.banks) {
            w.b(b.open);
            w.u64(b.row);
        }
        w.u64(c.rowHits);
        w.u64(c.rowMisses);
        w.u64(c.bursts);
        w.u64(c.bytes);
    }

    // Low-power state machine.
    w.u8(static_cast<std::uint8_t>(_lpState));
    w.tick(_lpSince);
    w.tick(_powerDownTicks);
    w.tick(_selfRefreshTicks);
    w.u64(_lpEntries);
    bool lpLive = _lpTimer != InvalidEventId && eq.isLive(_lpTimer);
    w.b(lpLive);
    if (lpLive) {
        w.u64(_lpTimer);
        w.tick(eq.scheduledWhen(_lpTimer));
    }

    // Bandwidth sampler event.
    bool bwLive = _bwEvent != InvalidEventId && eq.isLive(_bwEvent);
    w.b(bwLive);
    if (bwLive) {
        w.u64(_bwEvent);
        w.tick(eq.scheduledWhen(_bwEvent));
    }

    _stats.saveState(w);
}

void
MemoryController::loadState(SnapshotReader &r)
{
    EventQueue &eq = system().eventq();

    _windowBytes = r.u64();
    _windowStart = r.tick();
    _bytesRead = r.u64();
    _bytesWritten = r.u64();
    _rowHits = r.u64();
    _rowMisses = r.u64();
    _eccCorrected = r.u64();
    _eccUncorrected = r.u64();
    _burstsAccepted = r.u64();
    _burstsCompleted = r.u64();
    _wakePenalty = r.tick();

    _byRequester.clear();
    std::uint32_t nReq = r.u32();
    for (std::uint32_t i = 0; i < nReq; ++i) {
        std::uint32_t id = r.u32();
        _byRequester[id] = r.u64();
    }

    std::uint32_t nCh = r.u32();
    if (nCh != _channels.size()) {
        fatal(name(), ": snapshot has ", nCh, " channels, config has ",
              _channels.size(), " (config mismatch)");
    }
    for (auto &c : _channels) {
        std::uint32_t nBanks = r.u32();
        if (nBanks != c.banks.size()) {
            fatal(name(), ": snapshot has ", nBanks,
                  " banks/channel, config has ", c.banks.size(),
                  " (config mismatch)");
        }
        for (auto &b : c.banks) {
            b.open = r.b();
            b.row = r.u64();
        }
        c.rowHits = r.u64();
        c.rowMisses = r.u64();
        c.bursts = r.u64();
        c.bytes = r.u64();
    }

    _lpState = static_cast<LpState>(r.u8());
    _lpSince = r.tick();
    _powerDownTicks = r.tick();
    _selfRefreshTicks = r.tick();
    _lpEntries = r.u64();
    if (r.b()) {
        EventId id = r.u64();
        Tick when = r.tick();
        eq.restoreEvent(id, when, [this] { lpTimerFired(); },
                        EventPriority::Default, "dram.lp");
        _lpTimer = id;
    } else {
        _lpTimer = InvalidEventId;
    }
    if (r.b()) {
        EventId id = r.u64();
        Tick when = r.tick();
        eq.restoreEvent(id, when, [this] { sampleBandwidth(); },
                        EventPriority::Stats, "dram.bw");
        _bwEvent = id;
    } else {
        _bwEvent = InvalidEventId;
    }

    _stats.loadState(r);
    // The restored power level is re-integrated by the energy ledger
    // (serialized separately); nothing to re-apply here.
}

} // namespace vip
