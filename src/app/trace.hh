/**
 * @file
 * Frame-event tracing (GemDroid-style trace record/replay).
 *
 * The simulator can record every frame's lifecycle (generation,
 * processing start, completion, QoS verdict) into a FrameTrace, dump
 * it as CSV, and reload it — useful both for debugging and for
 * trace-driven re-analysis without re-running the platform model.
 */

#ifndef VIP_APP_TRACE_HH
#define VIP_APP_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace vip
{

/** One frame's recorded lifecycle. */
struct FrameEvent
{
    std::uint32_t flowId = 0;
    std::string flowName;
    std::uint64_t frameId = 0;
    Tick generated = 0;   ///< nominal generation time (k / fps)
    Tick started = 0;     ///< first stage began processing
    Tick completed = 0;   ///< consumed by the sink
    Tick deadline = 0;    ///< QoS deadline
    bool violated = false;///< completed after the deadline
    bool dropped = false; ///< missed by more than one period

    /** Processing latency through the IP chain. */
    Tick flowTime() const
    {
        return completed >= started ? completed - started : 0;
    }
};

/** An append-only trace of frame events. */
class FrameTrace
{
  public:
    void record(FrameEvent ev) { _events.push_back(std::move(ev)); }

    const std::vector<FrameEvent> &events() const { return _events; }
    std::size_t size() const { return _events.size(); }
    bool empty() const { return _events.empty(); }
    void clear() { _events.clear(); }

    /** @{ Aggregates. */
    std::uint64_t countViolations() const;
    std::uint64_t countDrops() const;
    double meanFlowTimeMs() const;
    /** @} */

    /** Write as CSV (with header). */
    void dumpCsv(std::ostream &os) const;

    /** Parse a CSV previously produced by dumpCsv(). */
    static FrameTrace loadCsv(std::istream &is);

  private:
    std::vector<FrameEvent> _events;
};

} // namespace vip

#endif // VIP_APP_TRACE_HH
