#include "app/flow.hh"

#include "sim/logging.hh"

namespace vip
{

std::vector<IpKind>
FlowSpec::hwStages() const
{
    std::vector<IpKind> out;
    out.reserve(stages.size());
    for (auto s : stages) {
        if (s != IpKind::CPU)
            out.push_back(s);
    }
    return out;
}

std::vector<std::uint64_t>
FlowSpec::frameEdges(std::uint64_t frame_id) const
{
    std::vector<std::uint64_t> edges = edgeBytes;
    if (hasGop && !edges.empty()) {
        // Stage-0 input is the compressed bitstream: size depends on
        // whether this is an independent or a predicted frame.  The
        // nominal edgeBytes[0] holds the *raw* footprint.
        edges[0] = gop.compressedBytes(edgeBytes[0], frame_id);
    }
    return edges;
}

bool
FlowSpec::sourceGenerated() const
{
    auto hw = hwStages();
    return !hw.empty() && ipIsSource(hw.front());
}

std::uint64_t
FlowSpec::baselineMemBytesPerFrame() const
{
    // In the baseline every inter-stage hand-off stages through DRAM:
    // stage i writes edge[i+1], stage i+1 reads it back.  The initial
    // input is read once (unless sensor-generated, which writes then
    // reads), and the sink only reads.
    auto edges = frameEdges(0);
    if (edges.empty())
        return 0;
    std::uint64_t total = edges[0]; // initial read (or sensor write)
    if (sourceGenerated())
        total += edges[0];
    for (std::size_t i = 1; i < edges.size(); ++i)
        total += 2 * edges[i]; // write by producer + read by consumer
    return total;
}

void
FlowSpec::validate() const
{
    auto hw = hwStages();
    if (hw.empty())
        fatal("flow '", name, "' has no hardware stages");
    if (edgeBytes.size() != hw.size()) {
        fatal("flow '", name, "': edgeBytes size ", edgeBytes.size(),
              " != hw stage count ", hw.size());
    }
    for (std::size_t i = 0; i < hw.size(); ++i) {
        if (edgeBytes[i] == 0)
            fatal("flow '", name, "': zero bytes on edge ", i);
        if (i + 1 < hw.size() && ipIsSink(hw[i]))
            fatal("flow '", name, "': sink IP mid-chain");
        if (i > 0 && ipIsSource(hw[i]))
            fatal("flow '", name, "': source IP mid-chain");
    }
    if (!ipIsSink(hw.back()))
        fatal("flow '", name, "': last stage must be a sink IP");
    if (fps <= 0.0)
        fatal("flow '", name, "': fps must be positive");
}

} // namespace vip
