#include "app/trace_analysis.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace vip
{

std::map<std::string, std::vector<const FrameEvent *>>
TraceAnalysis::byFlow() const
{
    std::map<std::string, std::vector<const FrameEvent *>> out;
    for (const auto &e : _trace.events())
        out[e.flowName].push_back(&e);
    for (auto &[name, ev] : out) {
        std::sort(ev.begin(), ev.end(),
                  [](const FrameEvent *a, const FrameEvent *b) {
                      return a->frameId < b->frameId;
                  });
    }
    return out;
}

std::map<std::string, TraceFlowStats>
TraceAnalysis::perFlow() const
{
    std::map<std::string, TraceFlowStats> out;
    for (const auto &[name, events] : byFlow()) {
        TraceFlowStats s;
        s.flowName = name;
        s.frames = events.size();
        std::vector<double> times;
        times.reserve(events.size());
        std::uint32_t run = 0;
        for (const auto *e : events) {
            s.violations += e->violated ? 1 : 0;
            s.drops += e->dropped ? 1 : 0;
            double ms = toMs(e->flowTime());
            times.push_back(ms);
            s.meanFlowTimeMs += ms;
            if (e->violated) {
                ++run;
                s.worstJankRun = std::max(s.worstJankRun, run);
            } else {
                run = 0;
            }
        }
        if (!times.empty()) {
            s.meanFlowTimeMs /= static_cast<double>(times.size());
            std::sort(times.begin(), times.end());
            auto pick = [&](double q) {
                auto idx = static_cast<std::size_t>(
                    q * static_cast<double>(times.size() - 1));
                return times[idx];
            };
            s.p95FlowTimeMs = pick(0.95);
            s.p99FlowTimeMs = pick(0.99);
            s.maxFlowTimeMs = times.back();
        }
        out.emplace(name, std::move(s));
    }
    return out;
}

double
TraceAnalysis::flowTimePercentileMs(double q) const
{
    vip_assert(q > 0.0 && q <= 1.0, "percentile out of range");
    std::vector<double> times;
    times.reserve(_trace.size());
    for (const auto &e : _trace.events())
        times.push_back(toMs(e.flowTime()));
    if (times.empty())
        return 0.0;
    std::sort(times.begin(), times.end());
    auto idx = static_cast<std::size_t>(
        q * static_cast<double>(times.size() - 1));
    return times[idx];
}

Tick
TraceAnalysis::inferPeriod(const std::vector<const FrameEvent *> &ev)
{
    std::vector<Tick> gaps;
    for (std::size_t i = 1; i < ev.size(); ++i) {
        if (ev[i]->generated > ev[i - 1]->generated)
            gaps.push_back(ev[i]->generated - ev[i - 1]->generated);
    }
    if (gaps.empty())
        return 0;
    std::sort(gaps.begin(), gaps.end());
    return gaps[gaps.size() / 2];
}

std::pair<std::uint64_t, std::uint64_t>
TraceAnalysis::rejudge(double periods) const
{
    std::uint64_t violations = 0, drops = 0;
    for (const auto &[name, events] : byFlow()) {
        Tick period = inferPeriod(events);
        if (period == 0)
            continue;
        for (const auto *e : events) {
            Tick deadline = e->generated +
                static_cast<Tick>(periods *
                                  static_cast<double>(period));
            if (e->completed > deadline)
                ++violations;
            if (e->completed > deadline + period)
                ++drops;
        }
    }
    return {violations, drops};
}

std::uint64_t
TraceAnalysis::jankEvents(std::uint32_t run_length) const
{
    vip_assert(run_length >= 1, "jank run length must be positive");
    std::uint64_t events = 0;
    for (const auto &[name, ev] : byFlow()) {
        std::uint32_t run = 0;
        for (const auto *e : ev) {
            if (e->violated) {
                ++run;
                if (run == run_length)
                    ++events; // count each burst once
            } else {
                run = 0;
            }
        }
    }
    return events;
}

} // namespace vip
