/**
 * @file
 * The multi-application workloads of Table 2 (W1..W8).
 */

#ifndef VIP_APP_WORKLOAD_HH
#define VIP_APP_WORKLOAD_HH

#include <string>
#include <vector>

#include "app/application.hh"

namespace vip
{

/** A workload: the set of applications running concurrently. */
struct Workload
{
    std::string name;
    std::string useCase;
    std::vector<AppSpec> apps;
};

/** Factory for the Table 2 workloads. */
class WorkloadCatalog
{
  public:
    /** W1..W8 by index. */
    static Workload byIndex(int i);

    /** All eight multi-app workloads. */
    static std::vector<Workload> all();

    /** A single application as a workload (the A1..A7 columns). */
    static Workload single(int app_index);
};

} // namespace vip

#endif // VIP_APP_WORKLOAD_HH
