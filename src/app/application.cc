#include "app/application.hh"

#include "sim/logging.hh"

namespace vip
{

namespace
{

using K = IpKind;

constexpr std::uint64_t kAudioFrame = 16_KiB;  // Table 3 Aud.Frame
constexpr double kAudioFps = 12.0;             // ~85 ms PCM chunks
constexpr std::uint64_t kCompressedAudio = 4_KiB;

/** Video decode display flow: CPU - VD - DC. */
FlowSpec
videoFlow(const std::string &name, Resolution res, double fps)
{
    FlowSpec f;
    f.name = name;
    f.stages = {K::CPU, K::VD, K::DC};
    f.fps = fps;
    // edge 0: VD input, nominal raw footprint (GOP model compresses);
    // edge 1: decoded YUV surface handed to the display controller.
    f.edgeBytes = {res.yuvBytes(), res.yuvBytes()};
    f.hasGop = true;
    f.appInstrPerFrame = 4'000'000;
    return f;
}

/** Game render flow: GPU - DC. */
FlowSpec
renderFlow(const std::string &name, Resolution res, double fps,
           std::uint64_t app_instr)
{
    FlowSpec f;
    f.name = name;
    f.stages = {K::GPU, K::DC};
    f.fps = fps;
    // edge 0: command/vertex/texture traffic the GPU pulls per frame;
    // edge 1: the rendered RGBA framebuffer scanned out by the DC.
    f.edgeBytes = {res.rgbaBytes() / 4, res.rgbaBytes()};
    f.appInstrPerFrame = app_instr;
    return f;
}

} // namespace

const char *
appClassName(AppClass c)
{
    switch (c) {
      case AppClass::VideoPlayback: return "video-playback";
      case AppClass::VideoEncode: return "video-encode";
      case AppClass::Game: return "game";
      case AppClass::AudioOnly: return "audio";
      default: return "?";
    }
}

FlowSpec
AppCatalog::audioFlow(const std::string &name, bool fromCpu)
{
    FlowSpec f;
    f.name = name;
    f.stages = fromCpu
        ? std::vector<K>{K::CPU, K::AD, K::SND}
        : std::vector<K>{K::AD, K::SND};
    f.fps = kAudioFps;
    f.edgeBytes = {kCompressedAudio, kAudioFrame};
    f.appInstrPerFrame = 300'000;
    f.qosCritical = false;
    return f;
}

FlowSpec
AppCatalog::micFlow(const std::string &name, IpKind sink)
{
    FlowSpec f;
    f.name = name;
    f.stages = {K::MIC, K::AE, sink};
    f.fps = kAudioFps;
    f.edgeBytes = {kAudioFrame, kAudioFrame, kCompressedAudio};
    f.appInstrPerFrame = 200'000;
    f.qosCritical = false;
    return f;
}

AppSpec
AppCatalog::game1()
{
    AppSpec a;
    a.name = "Game-1";
    a.cls = AppClass::Game;
    a.flows = {
        renderFlow("Game-1.render", resolutions::panel, 60.0,
                   4'000'000),
        audioFlow("Game-1.audio"),
    };
    return a;
}

AppSpec
AppCatalog::arGame()
{
    AppSpec a;
    a.name = "AR-Game";
    a.cls = AppClass::Game;

    FlowSpec enc;
    enc.name = "AR-Game.stream";
    enc.stages = {K::CPU, K::VE, K::NW};
    enc.fps = 30.0;
    enc.edgeBytes = {resolutions::panel.rgbaBytes(),
                     resolutions::panel.rgbaBytes() / 25};
    enc.appInstrPerFrame = 800'000;
    enc.qosCritical = false;

    a.flows = {
        renderFlow("AR-Game.render", resolutions::panel, 60.0,
                   5'000'000),
        enc,
        audioFlow("AR-Game.audio"),
        micFlow("AR-Game.mic", K::NW),
    };
    return a;
}

AppSpec
AppCatalog::audioPlay()
{
    AppSpec a;
    a.name = "Audio-Play";
    a.cls = AppClass::AudioOnly;

    // A sparse UI flow: album art / progress bar redraws.
    FlowSpec ui;
    ui.name = "Audio-Play.ui";
    ui.stages = {K::CPU, K::DC};
    ui.fps = 5.0;
    ui.edgeBytes = {resolutions::panel.rgbaBytes()};
    ui.appInstrPerFrame = 500'000;
    ui.qosCritical = false;

    auto audio = audioFlow("Audio-Play.audio", /*fromCpu=*/true);
    audio.qosCritical = true; // the app's primary user experience
    a.flows = {audio, ui};
    return a;
}

AppSpec
AppCatalog::skype()
{
    AppSpec a;
    a.name = "Skype";
    a.cls = AppClass::VideoEncode;

    // Incoming call video (720p is typical for video calls).
    FlowSpec in = videoFlow("Skype.decode", resolutions::r720p, 30.0);

    // Outgoing camera capture, encoded and sent to the radio.
    FlowSpec out;
    out.name = "Skype.capture";
    out.stages = {K::CAM, K::VE, K::NW};
    out.fps = 30.0;
    out.edgeBytes = {resolutions::r720p.yuvBytes(),
                     resolutions::r720p.yuvBytes(),
                     resolutions::r720p.yuvBytes() / 25};
    out.appInstrPerFrame = 600'000;
    out.qosCritical = false;

    a.flows = {
        in,
        out,
        audioFlow("Skype.audio"),
        micFlow("Skype.mic", K::NW),
    };
    return a;
}

AppSpec
AppCatalog::videoPlayer(Resolution res, double fps,
                        const std::string &name)
{
    AppSpec a;
    a.name = name;
    a.cls = AppClass::VideoPlayback;
    a.flows = {
        videoFlow(name + ".video", res, fps),
        audioFlow(name + ".audio"),
    };
    return a;
}

AppSpec
AppCatalog::videoRecord()
{
    AppSpec a;
    a.name = "Video-Record";
    a.cls = AppClass::VideoEncode;

    const auto cam = resolutions::camera;

    FlowSpec preview;
    preview.name = "Video-Record.preview";
    preview.stages = {K::CAM, K::IMG, K::DC};
    preview.fps = 30.0;
    preview.edgeBytes = {cam.yuvBytes(), cam.yuvBytes(),
                         resolutions::panel.rgbaBytes()};
    preview.appInstrPerFrame = 900'000;

    FlowSpec record;
    record.name = "Video-Record.encode";
    record.stages = {K::CAM, K::VE, K::MMC};
    record.fps = 30.0;
    record.edgeBytes = {cam.yuvBytes(), cam.yuvBytes(),
                        cam.yuvBytes() / 25};
    record.appInstrPerFrame = 600'000;
    record.qosCritical = false;

    a.flows = {
        preview,
        record,
        micFlow("Video-Record.mic", K::MMC),
    };
    return a;
}

AppSpec
AppCatalog::youtube()
{
    // Streamed playback: the same hardware flow as the video player;
    // the network download shows up as extra CPU-side work.
    AppSpec a = videoPlayer(resolutions::r1080p, 60.0, "YouTube");
    a.flows[0].appInstrPerFrame = 5'000'000; // + network stack work
    return a;
}

AppSpec
AppCatalog::grafikaPlayer(Resolution res, double fps,
                          const std::string &name)
{
    AppSpec a;
    a.name = name;
    a.cls = AppClass::VideoPlayback;

    FlowSpec f;
    f.name = name + ".video";
    f.stages = {K::CPU, K::VD, K::GPU, K::DC};
    f.fps = fps;
    f.edgeBytes = {res.yuvBytes(), res.yuvBytes(), res.rgbaBytes()};
    f.hasGop = true;
    f.appInstrPerFrame = 4'500'000;

    a.flows = {f, audioFlow(name + ".audio")};
    return a;
}

AppSpec
AppCatalog::byIndex(int i)
{
    switch (i) {
      case 1: return game1();
      case 2: return arGame();
      case 3: return audioPlay();
      case 4: return skype();
      case 5: return videoPlayer();
      case 6: return videoRecord();
      case 7: return youtube();
      default: fatal("no application A", i);
    }
}

} // namespace vip
