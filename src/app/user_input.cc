#include "app/user_input.hh"

#include <algorithm>

#include <string>

namespace vip
{

FlappyTapModel::FlappyTapModel()
{
    // Digitized from Fig 5 (tap-gap seconds -> weight), adjusted so
    // that >60% of the mass lies above 0.5 s, as the text states.
    _dist.setPoints({
        {0.15, 1.5}, {0.20, 3.0}, {0.25, 5.0}, {0.30, 7.0},
        {0.35, 7.5}, {0.40, 7.0}, {0.45, 5.0}, {0.50, 4.0},
        {0.55, 5.5}, {0.60, 5.5}, {0.65, 5.0}, {0.70, 5.0},
        {0.75, 4.5}, {0.80, 4.0}, {0.85, 4.0}, {0.90, 3.5},
        {0.95, 3.5}, {1.00, 3.0}, {1.05, 3.0}, {1.10, 2.5},
        {1.15, 2.5}, {1.20, 2.0}, {1.25, 2.0}, {1.50, 5.0},
        {2.00, 4.0}, {3.00, 3.0},
    });
}

Tick
FlappyTapModel::nextGap(Random &rng)
{
    // The paper observes rapid successive taps at least 0.15 s apart.
    double gap = std::max(0.15, _dist.sample(rng));
    return fromSec(gap);
}

FruitFlickModel::FruitFlickModel()
{
    // Digitized from Fig 6b: maximum burstable frames between flicks
    // (60 FPS).  Long tail out past 200 frames (>3 s pauses).
    _gapFrames.setPoints({
        {7.5, 16.0},  {10.5, 13.0}, {13.5, 10.0}, {16.5, 8.0},
        {22.5, 6.0},  {25.5, 6.5},  {28.5, 7.0},  {31.5, 5.0},
        {34.5, 4.0},  {52.5, 3.0},  {67.5, 2.5},  {70.5, 2.0},
        {76.5, 2.0},  {94.5, 1.5},  {97.5, 1.5},  {100.5, 1.5},
        {106.5, 1.5}, {109.5, 1.0}, {127.5, 1.0}, {130.5, 1.0},
        {199.5, 1.0}, {240.0, 1.0},
    });
}

Tick
FruitFlickModel::nextGap(Random &rng)
{
    // Gap between flicks, in frames at 60 FPS.
    double frames = _gapFrames.sample(rng);
    return fromSec(frames / 60.0);
}

Tick
FruitFlickModel::inputDuration(Random &rng)
{
    // A flick/swipe keeps the finger down for 0.2 - 0.6 s; about 40%
    // of frames end up inside flicks (Fig 6a) given the gap model.
    return fromSec(rng.uniform(0.2, 0.6));
}

std::unique_ptr<TouchModel>
makeTouchModel(const std::string &app_name)
{
    if (app_name.find("AR") != std::string::npos ||
        app_name.find("Ninja") != std::string::npos) {
        return std::make_unique<FruitFlickModel>();
    }
    return std::make_unique<FlappyTapModel>();
}

} // namespace vip
