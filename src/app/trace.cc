#include "app/trace.hh"

#include <istream>
#include <ostream>
#include <sstream>

#include "sim/logging.hh"

namespace vip
{

std::uint64_t
FrameTrace::countViolations() const
{
    std::uint64_t n = 0;
    for (const auto &e : _events)
        n += e.violated ? 1 : 0;
    return n;
}

std::uint64_t
FrameTrace::countDrops() const
{
    std::uint64_t n = 0;
    for (const auto &e : _events)
        n += e.dropped ? 1 : 0;
    return n;
}

double
FrameTrace::meanFlowTimeMs() const
{
    if (_events.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &e : _events)
        sum += toMs(e.flowTime());
    return sum / static_cast<double>(_events.size());
}

void
FrameTrace::dumpCsv(std::ostream &os) const
{
    os << "flowId,flowName,frameId,generated,started,completed,"
          "deadline,violated,dropped\n";
    for (const auto &e : _events) {
        os << e.flowId << ',' << e.flowName << ',' << e.frameId << ','
           << e.generated << ',' << e.started << ',' << e.completed
           << ',' << e.deadline << ',' << (e.violated ? 1 : 0) << ','
           << (e.dropped ? 1 : 0) << '\n';
    }
}

FrameTrace
FrameTrace::loadCsv(std::istream &is)
{
    FrameTrace trace;
    std::string line;
    if (!std::getline(is, line))
        return trace; // empty stream: empty trace
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        std::istringstream ls(line);
        FrameEvent e;
        std::string field;
        auto next = [&](const char *what) {
            if (!std::getline(ls, field, ','))
                fatal("malformed trace CSV: missing ", what);
            return field;
        };
        e.flowId = static_cast<std::uint32_t>(
            std::stoul(next("flowId")));
        e.flowName = next("flowName");
        e.frameId = std::stoull(next("frameId"));
        e.generated = std::stoull(next("generated"));
        e.started = std::stoull(next("started"));
        e.completed = std::stoull(next("completed"));
        e.deadline = std::stoull(next("deadline"));
        e.violated = next("violated") == "1";
        e.dropped = next("dropped") == "1";
        trace.record(std::move(e));
    }
    return trace;
}

} // namespace vip
