/**
 * @file
 * The application catalog of Table 1.
 *
 * Each AppSpec bundles the flows an application runs concurrently,
 * its class (which selects the frame-burst sizing policy of Section
 * 4.3), and the per-frame software cost model.
 */

#ifndef VIP_APP_APPLICATION_HH
#define VIP_APP_APPLICATION_HH

#include <string>
#include <vector>

#include "app/flow.hh"

namespace vip
{

/** Application classes of Section 4.3. */
enum class AppClass : std::uint8_t
{
    VideoPlayback, ///< video playing/streaming apps
    VideoEncode,   ///< recording, Skype, Hangout ("recording" apps)
    Game,          ///< touch / flick based games
    AudioOnly,     ///< music playback
};

const char *appClassName(AppClass c);

/** An application: a named set of flows plus its burst class. */
struct AppSpec
{
    std::string name;
    AppClass cls = AppClass::VideoPlayback;
    std::vector<FlowSpec> flows;

    void
    validate() const
    {
        for (const auto &f : flows)
            f.validate();
    }
};

/**
 * Factory for the Table 1 applications.  Video resolution defaults to
 * 1080p; Table 3's 4K frames are used by the "HD" variants (workload
 * W2 and the motivation experiments of Figs 2-3).
 */
class AppCatalog
{
  public:
    /** A1: Game-1 — GPU-DC; AD-SND. */
    static AppSpec game1();

    /** A2: AR-Game — GPU-DC; CPU-VE-NW; AD-SND; MIC-AE-NW. */
    static AppSpec arGame();

    /** A3: Audio-Play — CPU-AD-SND; CPU-DC. */
    static AppSpec audioPlay();

    /** A4: Skype — CPU-VD-DC; CAM-VE-NW; AD-SND; MIC-AE-NW. */
    static AppSpec skype();

    /** A5: Video Player — CPU-VD-DC; AD-SND (Table 3: 4K frames). */
    static AppSpec videoPlayer(Resolution res = resolutions::r4k,
                               double fps = 60.0,
                               const std::string &name = "VideoPlay");

    /** A6: Video Record — CAM-IMG-DC; CAM-VE-MMC; MIC-AE-MMC. */
    static AppSpec videoRecord();

    /** A7: YouTube — CPU-VD-DC; AD-SND (streamed playback). */
    static AppSpec youtube();

    /** By index 1..7 (A1..A7). */
    static AppSpec byIndex(int i);

    /**
     * The instrumented Grafika player of the motivation study
     * (Figure 1): CPU-VD-GPU-DC with a render/composition pass, at
     * the given resolution and rate.  Used by the Fig 2/3 benches.
     */
    static AppSpec grafikaPlayer(Resolution res = resolutions::r4k,
                                 double fps = 60.0,
                                 const std::string &name = "Grafika");

    /** Helper: the audio playback flow (AD - SND). */
    static FlowSpec audioFlow(const std::string &name,
                              bool fromCpu = false);

    /** Helper: the microphone capture flow (MIC - AE - <sink>). */
    static FlowSpec micFlow(const std::string &name, IpKind sink);
};

} // namespace vip

#endif // VIP_APP_APPLICATION_HH
