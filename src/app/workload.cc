#include "app/workload.hh"

#include "sim/logging.hh"

namespace vip
{

namespace
{

/** Clone an app under a unique instance name. */
AppSpec
instance(AppSpec a, const std::string &suffix)
{
    a.name += suffix;
    for (auto &f : a.flows)
        f.name += suffix;
    return a;
}

} // namespace

Workload
WorkloadCatalog::byIndex(int i)
{
    Workload w;
    switch (i) {
      case 1:
        w.name = "W1";
        w.useCase = "Concurrent multiple Video Playback from disk";
        w.apps = {instance(AppCatalog::videoPlayer(), "#0"),
                  instance(AppCatalog::videoPlayer(), "#1")};
        break;
      case 2:
        w.name = "W2";
        w.useCase = "Concurrent multiple Video Playback (1 HD + 2)";
        w.apps = {
            instance(AppCatalog::videoPlayer(resolutions::r4k, 60.0,
                                             "HD-Video"),
                     "#0"),
            instance(AppCatalog::videoPlayer(resolutions::r1080p),
                     "#1"),
            instance(AppCatalog::videoPlayer(resolutions::r1080p),
                     "#2"),
        };
        break;
      case 3:
        w.name = "W3";
        w.useCase = "Youtube video played with video on disk";
        w.apps = {instance(AppCatalog::videoPlayer(), "#0"),
                  instance(AppCatalog::youtube(), "#1")};
        break;
      case 4:
        w.name = "W4";
        w.useCase = "Watching video while teleconferencing";
        w.apps = {instance(AppCatalog::skype(), "#0"),
                  instance(AppCatalog::videoPlayer(), "#1")};
        break;
      case 5:
        w.name = "W5";
        w.useCase = "Online multi-player gaming";
        w.apps = {instance(AppCatalog::game1(), "#0"),
                  instance(AppCatalog::skype(), "#1")};
        break;
      case 6:
        w.name = "W6";
        w.useCase = "Music playback from disk while gaming";
        w.apps = {instance(AppCatalog::arGame(), "#0"),
                  instance(AppCatalog::audioPlay(), "#1")};
        break;
      case 7:
        w.name = "W7";
        w.useCase = "Recording while playing another video";
        w.apps = {instance(AppCatalog::videoPlayer(), "#0"),
                  instance(AppCatalog::videoRecord(), "#1")};
        break;
      case 8:
        w.name = "W8";
        w.useCase = "Multiplayer gaming with video-streaming";
        w.apps = {instance(AppCatalog::videoPlayer(), "#0"),
                  instance(AppCatalog::arGame(), "#1")};
        break;
      default:
        fatal("no workload W", i);
    }
    return w;
}

std::vector<Workload>
WorkloadCatalog::all()
{
    std::vector<Workload> out;
    out.reserve(8);
    for (int i = 1; i <= 8; ++i)
        out.push_back(byIndex(i));
    return out;
}

Workload
WorkloadCatalog::single(int app_index)
{
    Workload w;
    w.name = "A" + std::to_string(app_index);
    w.apps = {AppCatalog::byIndex(app_index)};
    w.useCase = "single application " + w.apps[0].name;
    return w;
}

} // namespace vip
