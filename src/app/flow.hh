/**
 * @file
 * Flow specifications: an application's data path through IP cores.
 *
 * A flow is a sequence of IP stages (Table 1, e.g. "CPU - VD - DC")
 * plus the byte footprint of the data on every edge and the frame
 * cadence.  Edge sizes may vary per frame (video GOP structure), so a
 * flow resolves to per-frame edge vectors through frameEdges().
 */

#ifndef VIP_APP_FLOW_HH
#define VIP_APP_FLOW_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ip/ip_types.hh"
#include "sim/types.hh"

namespace vip
{

/** Pixel geometry helpers. */
struct Resolution
{
    std::uint32_t w = 1920;
    std::uint32_t h = 1080;

    std::uint64_t pixels() const
    {
        return static_cast<std::uint64_t>(w) * h;
    }

    /** YUV420 frame footprint. */
    std::uint64_t yuvBytes() const { return pixels() * 3 / 2; }

    /** RGBA8888 frame footprint. */
    std::uint64_t rgbaBytes() const { return pixels() * 4; }
};

/** Common resolutions used in the evaluation. */
namespace resolutions
{
constexpr Resolution r720p{1280, 720};
constexpr Resolution r1080p{1920, 1080};
constexpr Resolution r4k{3840, 2160};          // Table 3 Vid.Frame
constexpr Resolution camera{2560, 1620};       // Table 3 Camera Frame
constexpr Resolution panel{1280, 800};         // Nexus 7 panel
} // namespace resolutions

/**
 * Video GOP structure (Section 4.3): an independent (I) frame every
 * gopSize frames, predicted (P) frames in between.  Compressed input
 * sizes differ accordingly.
 */
struct GopParams
{
    std::uint32_t gopSize = 16;     ///< "less than 20 frames" [3]
    double iCompression = 8.0;      ///< raw/I-frame size ratio
    double pCompression = 25.0;     ///< raw/P-frame size ratio

    bool isIndependent(std::uint64_t frame_id) const
    {
        return gopSize == 0 || frame_id % gopSize == 0;
    }

    std::uint64_t
    compressedBytes(std::uint64_t raw_bytes, std::uint64_t frame_id) const
    {
        double ratio =
            isIndependent(frame_id) ? iCompression : pCompression;
        auto b = static_cast<std::uint64_t>(
            static_cast<double>(raw_bytes) / ratio);
        return b > 0 ? b : 1;
    }
};

/** One application data flow (a row entry of Table 1). */
struct FlowSpec
{
    std::string name;

    /**
     * Stage sequence including a leading CPU pseudo-stage when the
     * software produces the initial data (e.g. "CPU - VD - DC").
     */
    std::vector<IpKind> stages;

    /** Target frame rate (Table 3: 60 FPS for display flows). */
    double fps = 60.0;

    /**
     * Bytes entering each *hardware* stage for a nominal frame;
     * edgeBytes[0] is the initial input (DRAM buffer or sensor), and
     * edgeBytes[i] is what stage i-1 hands to stage i.  Size equals
     * the number of hardware stages.
     */
    std::vector<std::uint64_t> edgeBytes;

    /** Non-zero gopSize enables GOP-varied stage-0 input sizes. */
    GopParams gop{};
    bool hasGop = false;

    /** CPU instructions to prepare one frame (app-level work). */
    std::uint64_t appInstrPerFrame = 1'500'000;

    /**
     * True when the display path drives user-perceived QoS (frame
     * drops are counted against flows with QoS significance).
     */
    bool qosCritical = true;

    /** Frame period in ticks. */
    Tick period() const { return fromSec(1.0 / fps); }

    /** Hardware stages only (drops the leading CPU pseudo-stage). */
    std::vector<IpKind> hwStages() const;

    /** Number of hardware stages. */
    std::size_t numHwStages() const { return hwStages().size(); }

    /** Resolve the edge byte vector for a specific frame. */
    std::vector<std::uint64_t> frameEdges(std::uint64_t frame_id) const;

    /** True when stage 0 is a sensor source (CAM/MIC). */
    bool sourceGenerated() const;

    /** Total DRAM traffic one frame causes in the baseline (bytes). */
    std::uint64_t baselineMemBytesPerFrame() const;

    /** Sanity-check invariants; fatal()s on inconsistency. */
    void validate() const;
};

} // namespace vip

#endif // VIP_APP_FLOW_HH
