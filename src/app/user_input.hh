/**
 * @file
 * User-input models from the paper's 20-user game study.
 *
 * Figure 5 publishes the distribution of the interval between
 * successive taps in FlappyBird; Figure 6 publishes, for FruitNinja,
 * the fraction of burstable frames (60%) and the distribution of the
 * maximum burst length between flicks.  These empirical histograms
 * are encoded below and drive both the input-event generators used by
 * the game workloads and the Fig 5/6 reproduction benches.
 */

#ifndef VIP_APP_USER_INPUT_HH
#define VIP_APP_USER_INPUT_HH

#include <memory>

#include "sim/random.hh"
#include "sim/types.hh"

namespace vip
{

/** Generator of user-input event times for a game session. */
class TouchModel
{
  public:
    virtual ~TouchModel() = default;

    /** Time from one input event to the next. */
    virtual Tick nextGap(Random &rng) = 0;

    /**
     * Duration the input occupies (a tap is instantaneous; a flick
     * blocks bursting while the finger is down — Fig 6a).
     */
    virtual Tick inputDuration(Random &rng) = 0;

    virtual const char *name() const = 0;
};

/**
 * FlappyBird-style tapping (Fig 5): rapid successive taps are at
 * least 0.15 s apart and >60% of gaps exceed 0.5 s.
 */
class FlappyTapModel : public TouchModel
{
  public:
    FlappyTapModel();

    Tick nextGap(Random &rng) override;
    Tick inputDuration(Random &) override { return 0; }
    const char *name() const override { return "flappy-tap"; }

    const EmpiricalDistribution &distribution() const { return _dist; }

  private:
    EmpiricalDistribution _dist; ///< gap in seconds
};

/**
 * FruitNinja-style flicking (Fig 6): ~40% of frames fall inside
 * flicks (not burstable); the burstable gaps between flicks follow
 * the published long-tailed distribution (up to >3 s, i.e. >180
 * frames at 60 FPS).
 */
class FruitFlickModel : public TouchModel
{
  public:
    FruitFlickModel();

    Tick nextGap(Random &rng) override;
    Tick inputDuration(Random &rng) override;
    const char *name() const override { return "fruit-flick"; }

    const EmpiricalDistribution &gapDistribution() const
    {
        return _gapFrames;
    }

  private:
    EmpiricalDistribution _gapFrames; ///< burstable gap in frames
};

/** The appropriate touch model for a game application, by name. */
std::unique_ptr<TouchModel> makeTouchModel(const std::string &app_name);

} // namespace vip

#endif // VIP_APP_USER_INPUT_HH
