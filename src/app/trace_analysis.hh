/**
 * @file
 * Offline analysis of recorded frame traces.
 *
 * A FrameTrace captures every frame's lifecycle; these helpers answer
 * the questions the paper's evaluation asks — per-flow QoS, latency
 * percentiles, jank (consecutive misses a user perceives as stutter)
 * — and support *re-judging* a trace under a different deadline
 * policy without re-running the platform, which is how trace-driven
 * frameworks like GemDroid amortize simulation cost.
 */

#ifndef VIP_APP_TRACE_ANALYSIS_HH
#define VIP_APP_TRACE_ANALYSIS_HH

#include <map>
#include <string>
#include <vector>

#include "app/trace.hh"

namespace vip
{

/** Aggregate statistics of one flow inside a trace. */
struct TraceFlowStats
{
    std::string flowName;
    std::uint64_t frames = 0;
    std::uint64_t violations = 0;
    std::uint64_t drops = 0;
    double meanFlowTimeMs = 0.0;
    double p95FlowTimeMs = 0.0;
    double p99FlowTimeMs = 0.0;
    double maxFlowTimeMs = 0.0;
    /** Longest run of consecutive deadline misses (jank burst). */
    std::uint32_t worstJankRun = 0;
};

/** Trace analysis toolkit. */
class TraceAnalysis
{
  public:
    explicit TraceAnalysis(const FrameTrace &trace) : _trace(trace) {}

    /** Per-flow aggregates, keyed by flow name. */
    std::map<std::string, TraceFlowStats> perFlow() const;

    /** Latency percentile across every frame (0 < q <= 1). */
    double flowTimePercentileMs(double q) const;

    /**
     * Re-judge the trace against a different deadline policy: each
     * frame's deadline becomes generation + @p periods frame periods,
     * where the frame period is inferred per flow from the generation
     * cadence.  Returns total (violations, drops) under the new
     * policy.
     */
    std::pair<std::uint64_t, std::uint64_t>
    rejudge(double periods) const;

    /**
     * Jank events: runs of @p run_length or more consecutive
     * deadline-missing frames within one flow.
     */
    std::uint64_t jankEvents(std::uint32_t run_length = 2) const;

  private:
    /** Median generation gap of a flow (its frame period). */
    static Tick inferPeriod(const std::vector<const FrameEvent *> &ev);

    std::map<std::string, std::vector<const FrameEvent *>>
    byFlow() const;

    const FrameTrace &_trace;
};

} // namespace vip

#endif // VIP_APP_TRACE_ANALYSIS_HH
